"""Parameter sweeps with replications for the figure experiments.

A sweep varies the number of requesting connections (the x axis of every
figure) for one or more scenario variants (the curves: speed values, angle
values, distance values, or controllers) and averages each point over several
independent replications.

Replications are mutually independent — each derives its random streams from
``(seed, replication)`` alone — so the sweep flattens every
``(variant, request count, replication)`` combination into one task list and
hands it to a pluggable :class:`~repro.simulation.executor.SweepExecutor`.
The serial backend reproduces the historical strictly-sequential behaviour;
the process-pool backend fans the tasks across cores.  Either way the tasks
carry their full seeded configuration and the results are reassembled in
task order, so the returned :class:`SweepResult` is identical for every
backend and worker count.

Aggregation is columnar: workers emit compact counter rows
(:class:`~repro.analysis.frame.FrameRow`), the executor's ``map_reduce``
folds them into chunk-local :class:`~repro.analysis.frame.MetricsFrame`
column buffers (shared-memory backed on the process pool, so no run output
is ever pickled back to the parent), and the per-point statistics come out
of :meth:`MetricsFrame.group_reduce` — bit-identical to the historical
``aggregate_runs``/``aggregate_network_runs`` loops.  The assembled sweep
result carries the frame on its ``frame`` field.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field, replace
from typing import Mapping, Sequence

import numpy as np

from ..analysis.frame import FrameReducer, FrameRow, MetricsFrame
from ..cellular.network import hex_cell_count
from .batch import ControllerFactory, run_batch_experiment, run_batch_experiment_row
from .config import BatchExperimentConfig, NetworkExperimentConfig, PAPER_REQUEST_COUNTS
from .engine import run_network_experiment_row
from .executor import SerialExecutor, SweepExecutor, executor_by_name
from .results import AggregatedResult, NetworkAggregatedResult, RunResult
from .shard import run_coupled_sharded_network_experiment_row

__all__ = [
    "SweepPoint",
    "SweepCurve",
    "SweepResult",
    "ReplicationTask",
    "run_acceptance_sweep",
    "NetworkSweepSpec",
    "NetworkReplicationTask",
    "NetworkSweepPoint",
    "NetworkSweepCurve",
    "NetworkSweepResult",
    "run_network_sweep",
    "run_sharded_network_sweep",
    "run_coupled_sharded_network_sweep",
    "PAPER_NETWORK_ARRIVAL_RATES",
]

#: Default per-cell arrival rates (calls/s) of the network sweep: spans the
#: lightly loaded regime through saturation of the 7-cell topology.
PAPER_NETWORK_ARRIVAL_RATES: tuple[float, ...] = (0.01, 0.02, 0.03, 0.04, 0.05)


@dataclass(frozen=True)
class SweepPoint:
    """One (x, y) point of a figure curve with its replication spread."""

    request_count: int
    acceptance_percentage: float
    std_percentage: float
    replications: int


@dataclass(frozen=True)
class SweepCurve:
    """One labelled curve (e.g. "speed=60 km/h" or "FACS")."""

    label: str
    controller: str
    points: tuple[SweepPoint, ...]

    def __post_init__(self) -> None:
        # Intern the strings so equal-valued results serialise to identical
        # bytes whether the runs executed in-process or in a worker pool
        # (unpickled worker strings are otherwise distinct objects and break
        # pickle's memo sharing).
        object.__setattr__(self, "label", sys.intern(self.label))
        object.__setattr__(self, "controller", sys.intern(self.controller))
        # Indexed lookup for point_at(); setdefault keeps the first point per
        # request count, matching the historical linear-scan semantics.
        index: dict[int, SweepPoint] = {}
        for point in self.points:
            index.setdefault(point.request_count, point)
        object.__setattr__(self, "_point_index", index)

    def acceptance_series(self) -> list[float]:
        return [point.acceptance_percentage for point in self.points]

    def request_counts(self) -> list[int]:
        return [point.request_count for point in self.points]

    def point_at(self, request_count: int) -> SweepPoint:
        try:
            return self._point_index[request_count]
        except KeyError:
            raise KeyError(
                f"curve {self.label!r} has no point at {request_count} requests"
            ) from None

    def mean_acceptance(self) -> float:
        """Average acceptance percentage across the whole curve."""
        series = self.acceptance_series()
        return sum(series) / len(series)


@dataclass(frozen=True)
class SweepResult:
    """A family of curves sharing the same x axis (one per figure).

    ``frame`` carries the underlying columnar record store (one row per
    replication) when the sweep ran through the frame path; it is excluded
    from equality so codec round-trips of the rendered curves still
    compare equal.
    """

    name: str
    curves: tuple[SweepCurve, ...]
    frame: MetricsFrame | None = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        # Indexed lookup for curve(); first curve wins on duplicate labels,
        # matching the historical linear-scan semantics.
        index: dict[str, SweepCurve] = {}
        for curve in self.curves:
            index.setdefault(curve.label, curve)
        object.__setattr__(self, "_curve_index", index)

    def curve(self, label: str) -> SweepCurve:
        try:
            return self._curve_index[label]
        except KeyError:
            raise KeyError(
                f"sweep {self.name!r} has no curve {label!r}; "
                f"available: {[c.label for c in self.curves]}"
            ) from None

    def labels(self) -> list[str]:
        return [curve.label for curve in self.curves]


@dataclass(frozen=True)
class ReplicationTask:
    """One fully seeded replication of one sweep point.

    Self-contained and picklable (given a picklable controller factory), so
    it can be executed in any process in any order.
    """

    label: str
    request_count: int
    replication: int
    config: BatchExperimentConfig
    controller_factory: ControllerFactory


def _execute_replication(task: ReplicationTask) -> RunResult:
    """Run one replication; module-level so process pools can pickle it."""
    return run_batch_experiment(task.config, task.controller_factory).result


def _execute_replication_row(task: ReplicationTask) -> FrameRow:
    """Run one replication, returning only its compact counter row."""
    return run_batch_experiment_row(task.config, task.controller_factory, label=task.label)


def _sweep_ordinals(
    n_curves: int, n_points: int, runs_per_point: int
) -> tuple[np.ndarray, np.ndarray]:
    """(curve, point) ordinals of a curve-major, point-minor task list."""
    curve = np.repeat(np.arange(n_curves, dtype=np.int64), n_points * runs_per_point)
    point = np.tile(
        np.repeat(np.arange(n_points, dtype=np.int64), runs_per_point), n_curves
    )
    return curve, point


def _resolve_executor(executor: SweepExecutor | str | None) -> SweepExecutor:
    if executor is None:
        return SerialExecutor()
    if isinstance(executor, str):
        return executor_by_name(executor)
    if isinstance(executor, SweepExecutor):
        return executor
    raise TypeError(
        f"executor must be a SweepExecutor, an executor name or None, "
        f"got {type(executor).__name__}"
    )


def run_acceptance_sweep(
    name: str,
    variants: Mapping[str, tuple[BatchExperimentConfig, ControllerFactory]],
    request_counts: Sequence[int] = PAPER_REQUEST_COUNTS,
    replications: int = 10,
    executor: SweepExecutor | str | None = None,
) -> SweepResult:
    """Run the acceptance-vs-requests sweep for several scenario variants.

    ``variants`` maps a curve label to a (base config, controller factory)
    pair; for each requested connection count, ``replications`` independent
    runs (different seeds) are executed and averaged.  ``executor`` selects
    the backend the replications run on (``None``/"serial" for in-process
    order, "process" or a :class:`ProcessPoolSweepExecutor` for a worker
    pool); the result is identical for every backend.
    """
    if replications < 1:
        raise ValueError(f"replications must be >= 1, got {replications}")
    if not variants:
        raise ValueError("at least one variant is required")
    if not request_counts:
        raise ValueError("at least one request count is required")
    backend = _resolve_executor(executor)

    tasks: list[ReplicationTask] = []
    for label, (base_config, controller_factory) in variants.items():
        for request_count in request_counts:
            for replication in range(replications):
                config = base_config.with_requests(request_count).with_seed(
                    base_config.seed, replication=replication
                )
                tasks.append(
                    ReplicationTask(
                        label=label,
                        request_count=request_count,
                        replication=replication,
                        config=config,
                        controller_factory=controller_factory,
                    )
                )

    frame = backend.map_reduce(_execute_replication_row, tasks, FrameReducer("batch"))
    if len(frame) != len(tasks):  # pragma: no cover - defensive
        raise RuntimeError(
            f"executor {backend.name!r} returned {len(frame)} rows "
            f"for {len(tasks)} tasks"
        )

    # Group by (curve, point) ordinals — the same nested order the tasks
    # were generated in, so the statistics match the historical
    # aggregate_runs() walk bit for bit.
    frame = frame.with_ordinals(
        *_sweep_ordinals(len(variants), len(request_counts), replications)
    )
    groups = frame.group_reduce(("curve", "point"))
    curves: list[SweepCurve] = []
    for curve_index, label in enumerate(variants):
        points: list[SweepPoint] = []
        controller_name = ""
        for point_index, request_count in enumerate(request_counts):
            group = groups[curve_index * len(request_counts) + point_index]
            aggregated: AggregatedResult = group.to_aggregated_result()
            controller_name = aggregated.controller
            points.append(
                SweepPoint(
                    request_count=request_count,
                    acceptance_percentage=aggregated.mean_acceptance_percentage,
                    std_percentage=aggregated.std_acceptance_percentage,
                    replications=aggregated.replications,
                )
            )
        curves.append(SweepCurve(label=label, controller=controller_name, points=tuple(points)))
    return SweepResult(name=name, curves=tuple(curves), frame=frame)


# ----------------------------------------------------------------------
# Multi-cell network sweeps
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class NetworkSweepSpec:
    """Declarative description of a multi-cell network sweep.

    One curve per controller, one point per per-cell arrival rate, each
    point averaged over ``replications`` independent runs of the full
    mobility/handoff simulation.  Every ``(controller, rate, replication)``
    combination is an independent task, so the sweep parallelises over the
    same :class:`~repro.simulation.executor.SweepExecutor` backends as the
    single-cell figures.
    """

    name: str
    controllers: Mapping[str, ControllerFactory]
    arrival_rates: Sequence[float] = PAPER_NETWORK_ARRIVAL_RATES
    replications: int = 5
    base_config: NetworkExperimentConfig = field(default_factory=NetworkExperimentConfig)

    def __post_init__(self) -> None:
        if not self.controllers:
            raise ValueError("at least one controller is required")
        if not self.arrival_rates:
            raise ValueError("at least one arrival rate is required")
        if any(rate <= 0 for rate in self.arrival_rates):
            raise ValueError(f"arrival rates must be positive, got {self.arrival_rates}")
        if self.replications < 1:
            raise ValueError(f"replications must be >= 1, got {self.replications}")

    def tasks(self) -> list["NetworkReplicationTask"]:
        """Flatten the sweep into its independent, fully seeded tasks."""
        tasks: list[NetworkReplicationTask] = []
        for label, controller_factory in self.controllers.items():
            for rate in self.arrival_rates:
                for replication in range(self.replications):
                    config = self.base_config.with_arrival_rate(rate).with_seed(
                        self.base_config.seed, replication=replication
                    )
                    tasks.append(
                        NetworkReplicationTask(
                            label=label,
                            arrival_rate_per_cell_per_s=rate,
                            replication=replication,
                            config=config,
                            controller_factory=controller_factory,
                        )
                    )
        return tasks


@dataclass(frozen=True)
class NetworkReplicationTask:
    """One fully seeded replication of one network sweep point.

    Self-contained and picklable (given a picklable controller factory), so
    it can be executed in any process or thread in any order.
    """

    label: str
    arrival_rate_per_cell_per_s: float
    replication: int
    config: NetworkExperimentConfig
    controller_factory: ControllerFactory


def _execute_network_replication_row(task: NetworkReplicationTask) -> FrameRow:
    """Run one network replication, returning only its compact counter row.

    This is the worker function of the frame path: process-pool workers
    fold these rows into shared-memory column buffers instead of pickling
    :class:`NetworkRunOutput` trees back to the parent.
    """
    return run_network_experiment_row(
        task.config, task.controller_factory, label=task.label
    )


@dataclass(frozen=True)
class NetworkSweepPoint:
    """One point of a network sweep curve: QoS means at one arrival rate."""

    arrival_rate_per_cell_per_s: float
    acceptance_percentage: float
    std_percentage: float
    blocking_probability: float
    dropping_probability: float
    handoff_failure_ratio: float
    mean_occupancy_bu: float
    replications: int


@dataclass(frozen=True)
class NetworkSweepCurve:
    """One controller's curve across the arrival-rate axis."""

    label: str
    controller: str
    points: tuple[NetworkSweepPoint, ...]

    def __post_init__(self) -> None:
        # Intern the strings so equal-valued results serialise to identical
        # bytes whether the runs executed in-process or in a worker pool
        # (see SweepCurve).
        object.__setattr__(self, "label", sys.intern(self.label))
        object.__setattr__(self, "controller", sys.intern(self.controller))
        index: dict[float, NetworkSweepPoint] = {}
        for point in self.points:
            index.setdefault(point.arrival_rate_per_cell_per_s, point)
        object.__setattr__(self, "_point_index", index)

    def arrival_rates(self) -> list[float]:
        return [point.arrival_rate_per_cell_per_s for point in self.points]

    def acceptance_series(self) -> list[float]:
        return [point.acceptance_percentage for point in self.points]

    def blocking_series(self) -> list[float]:
        return [point.blocking_probability for point in self.points]

    def dropping_series(self) -> list[float]:
        return [point.dropping_probability for point in self.points]

    def handoff_failure_series(self) -> list[float]:
        return [point.handoff_failure_ratio for point in self.points]

    def point_at(self, arrival_rate_per_cell_per_s: float) -> NetworkSweepPoint:
        try:
            return self._point_index[arrival_rate_per_cell_per_s]
        except KeyError:
            raise KeyError(
                f"curve {self.label!r} has no point at arrival rate "
                f"{arrival_rate_per_cell_per_s}"
            ) from None


@dataclass(frozen=True)
class NetworkSweepResult:
    """A family of per-controller QoS curves over the arrival-rate axis.

    ``frame`` carries the underlying columnar record store (one row per
    run) when the sweep ran through the frame path; excluded from
    equality so codec round-trips of the rendered curves compare equal.
    """

    name: str
    curves: tuple[NetworkSweepCurve, ...]
    frame: MetricsFrame | None = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        index: dict[str, NetworkSweepCurve] = {}
        for curve in self.curves:
            index.setdefault(curve.label, curve)
        object.__setattr__(self, "_curve_index", index)

    def curve(self, label: str) -> NetworkSweepCurve:
        try:
            return self._curve_index[label]
        except KeyError:
            raise KeyError(
                f"network sweep {self.name!r} has no curve {label!r}; "
                f"available: {[c.label for c in self.curves]}"
            ) from None

    def labels(self) -> list[str]:
        return [curve.label for curve in self.curves]


def _assemble_network_result(
    spec: NetworkSweepSpec,
    frame: MetricsFrame,
    runs_per_point: int,
    name: str,
) -> NetworkSweepResult:
    """Reduce the sweep's frame (rows in task order) into point statistics.

    Shared by the coupled and sharded sweeps; they differ only in how many
    runs make up one point (``replications`` vs ``cells x replications``).
    The (curve, point) ordinal grouping walks the rows in exactly the
    nested task-generation order, so the statistics match the historical
    aggregate_network_runs() walk bit for bit.
    """
    frame = frame.with_ordinals(
        *_sweep_ordinals(len(spec.controllers), len(spec.arrival_rates), runs_per_point)
    )
    groups = frame.group_reduce(("curve", "point"))
    n_rates = len(spec.arrival_rates)
    curves: list[NetworkSweepCurve] = []
    for curve_index, label in enumerate(spec.controllers):
        points: list[NetworkSweepPoint] = []
        controller_name = ""
        for point_index, rate in enumerate(spec.arrival_rates):
            group = groups[curve_index * n_rates + point_index]
            aggregated: NetworkAggregatedResult = group.to_network_aggregated_result()
            controller_name = aggregated.controller
            points.append(
                NetworkSweepPoint(
                    arrival_rate_per_cell_per_s=rate,
                    acceptance_percentage=aggregated.mean_acceptance_percentage,
                    std_percentage=aggregated.std_acceptance_percentage,
                    blocking_probability=aggregated.mean_blocking_probability,
                    dropping_probability=aggregated.mean_dropping_probability,
                    handoff_failure_ratio=aggregated.mean_handoff_failure_ratio,
                    mean_occupancy_bu=aggregated.mean_occupancy_bu,
                    replications=aggregated.replications,
                )
            )
        curves.append(
            NetworkSweepCurve(label=label, controller=controller_name, points=tuple(points))
        )
    return NetworkSweepResult(name=name, curves=tuple(curves), frame=frame)


def run_network_sweep(
    spec: NetworkSweepSpec,
    executor: SweepExecutor | str | None = None,
) -> NetworkSweepResult:
    """Run the multi-cell QoS sweep described by ``spec``.

    Every ``(controller, arrival rate, replication)`` combination becomes an
    independent task whose randomness derives solely from its own seeded
    config, and the results are reassembled in task order — so the returned
    :class:`NetworkSweepResult` is byte-identical for every backend
    (serial, process pool or thread pool) and worker count.
    """
    backend = _resolve_executor(executor)
    tasks = spec.tasks()
    frame = backend.map_reduce(
        _execute_network_replication_row, tasks, FrameReducer("network")
    )
    if len(frame) != len(tasks):  # pragma: no cover - defensive
        raise RuntimeError(
            f"executor {backend.name!r} returned {len(frame)} rows "
            f"for {len(tasks)} tasks"
        )
    return _assemble_network_result(spec, frame, spec.replications, spec.name)


# ----------------------------------------------------------------------
# Per-cell sharded network sweeps
# ----------------------------------------------------------------------
#: Seed stride separating the per-cell shards of one replication.  Any
#: fixed constant works — it only has to map distinct cells of the same
#: replication onto distinct, deterministic stream seeds.  Shard 0 keeps
#: the base seed, so a single-cell (rings=0) sharded sweep reproduces the
#: coupled sweep's curves point for point.
_SHARD_SEED_STRIDE = 97_001_003


def run_sharded_network_sweep(
    spec: NetworkSweepSpec,
    executor: SweepExecutor | str | None = None,
) -> NetworkSweepResult:
    """Run the sweep of ``spec`` with every cell sharded into its own run.

    The topology of ``spec.base_config`` (``rings``) is decomposed into
    independent single-cell simulations: each cell draws its own arrival
    stream and mobility from a per-cell seed and runs its own controller
    instance, and the per-cell outputs are pooled into the point
    statistics (``replications`` of a point therefore reports
    ``cells x replications`` runs).  Inter-cell handoff coupling is
    deliberately dropped — that is the sharding trade — in exchange for
    ``cells``-way finer task granularity over the same executor backends.
    Results remain byte-identical for every backend and worker count.
    """
    backend = _resolve_executor(executor)
    cells = hex_cell_count(spec.base_config.rings)

    tasks: list[NetworkReplicationTask] = []
    for label, controller_factory in spec.controllers.items():
        for rate in spec.arrival_rates:
            for replication in range(spec.replications):
                for cell_index in range(cells):
                    config = spec.base_config.with_arrival_rate(rate)
                    config = replace(
                        config,
                        rings=0,
                        seed=config.seed + _SHARD_SEED_STRIDE * cell_index,
                        replication=replication,
                        # Each single-cell run keeps its own cell's capacity
                        # from a heterogeneous topology.
                        capacity_bu=spec.base_config.capacity_for(cell_index),
                        cell_capacities=None,
                    )
                    tasks.append(
                        NetworkReplicationTask(
                            label=label,
                            arrival_rate_per_cell_per_s=rate,
                            replication=replication,
                            config=config,
                            controller_factory=controller_factory,
                        )
                    )

    frame = backend.map_reduce(
        _execute_network_replication_row, tasks, FrameReducer("network")
    )
    if len(frame) != len(tasks):  # pragma: no cover - defensive
        raise RuntimeError(
            f"executor {backend.name!r} returned {len(frame)} rows "
            f"for {len(tasks)} tasks"
        )
    return _assemble_network_result(
        spec, frame, spec.replications * cells, f"{spec.name}-sharded"
    )


def run_coupled_sharded_network_sweep(
    spec: NetworkSweepSpec,
    executor: SweepExecutor | str | None = None,
    window_s: float | None = None,
) -> NetworkSweepResult:
    """Run the sweep of ``spec`` on the message-passing sharded engine.

    Unlike :func:`run_sharded_network_sweep`, handoff coupling is
    preserved: each replication runs the full multi-cell topology through
    :class:`~repro.simulation.shard.CoupledShardedNetworkSimulation`, where
    every cell is an independent shard worker and departing calls travel
    between shards as explicit handoff messages.  Parallelism therefore
    lives *inside* each run — ``executor`` selects the backend the shards
    execute on (serial / thread pool / process-worker blocks) — and the
    replications of the sweep run one after the other.  The conservative
    window protocol keeps the result byte-identical for every backend and
    worker count.
    """
    tasks = spec.tasks()
    reducer = FrameReducer("network")
    rows = [
        run_coupled_sharded_network_experiment_row(
            task.config,
            task.controller_factory,
            label=task.label,
            executor=executor,
            window_s=window_s,
        )
        for task in tasks
    ]
    frame = reducer.merge([reducer.fold(rows)])
    if len(frame) != len(tasks):  # pragma: no cover - defensive
        raise RuntimeError(
            f"sharded engine returned {len(frame)} rows for {len(tasks)} tasks"
        )
    return _assemble_network_result(
        spec, frame, spec.replications, f"{spec.name}-coupled-sharded"
    )
