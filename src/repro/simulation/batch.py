"""The single-cell batch experiment behind Figs. 7–10.

``request_count`` connection requests arrive at a single base station over a
fixed window; the configured admission controller decides each one; admitted
calls hold their bandwidth for an exponential, class-dependent holding time
and then release it.  The output is the percentage of accepted calls — the
y axis of every figure in the paper's evaluation.

The experiment runs on the discrete-event kernel (:mod:`repro.des`): one
generator process replays the arrival sequence and spawns a departure process
per admitted call, so occupancy rises and falls exactly as it would in the
authors' event-driven simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..analysis.frame import FrameRow, run_result_row
from ..cac.base import AdmissionController
from ..cellular.calls import Call, CallType
from ..cellular.cell import BaseStation
from ..cellular.metrics import CallMetrics, MetricsCollector
from ..cellular.mobility import UserState
from ..cellular.traffic import ServiceClass
from ..des.environment import Environment
from ..des.rng import StreamFactory
from .config import BatchExperimentConfig
from .results import RunResult

__all__ = [
    "BatchCallRecord",
    "BatchRunOutput",
    "TraceArrays",
    "build_requests",
    "build_trace_arrays",
    "run_batch_experiment",
    "run_batch_experiment_row",
]

ControllerFactory = Callable[[], AdmissionController]


@dataclass(frozen=True)
class BatchCallRecord:
    """Per-request trace entry produced by the batch experiment."""

    call_id: int
    arrival_time_s: float
    service: ServiceClass
    bandwidth_units: int
    user_state: UserState
    accepted: bool
    score: float
    occupancy_before_bu: int


@dataclass(frozen=True)
class BatchRunOutput:
    """Full output of one batch run: metrics plus the per-call trace."""

    result: RunResult
    records: tuple[BatchCallRecord, ...]
    peak_occupancy_bu: int
    #: Per-service-class admission counters, attached only by workload
    #: runs: class names and values flattened class-major over
    #: :data:`repro.analysis.frame.CLASS_COUNTER_FIELDS`.
    class_names: tuple[str, ...] = ()
    class_values: tuple[float, ...] = ()

    @property
    def acceptance_percentage(self) -> float:
        return self.result.acceptance_percentage


@dataclass(frozen=True)
class TraceArrays:
    """A whole arrival trace as one numpy column per request attribute.

    The columnar twin of the ``list[Call]`` a batch run replays: same draws,
    same values, no per-request objects.  ``class_codes`` indexes into
    ``services`` (the traffic mix's class order); every column has one entry
    per request, in arrival order, and call ids are implicitly ``1..n`` —
    exactly the per-run sequential ids :func:`build_requests` assigns.
    """

    services: tuple[ServiceClass, ...]
    arrival_time_s: np.ndarray
    class_codes: np.ndarray
    bandwidth_units: np.ndarray
    holding_time_s: np.ndarray
    speed_kmh: np.ndarray
    angle_deg: np.ndarray
    distance_km: np.ndarray

    def __len__(self) -> int:
        return len(self.arrival_time_s)

    @property
    def requested_bu(self) -> int:
        """Total requested bandwidth of the trace — one vectorized sum."""
        return int(self.bandwidth_units.sum())

    def to_calls(self) -> list[Call]:
        """Materialize the per-request :class:`Call` objects of the trace."""
        services = self.services
        codes = self.class_codes.tolist()
        bandwidths = self.bandwidth_units.tolist()
        arrivals = self.arrival_time_s.tolist()
        holdings = self.holding_time_s.tolist()
        speeds = self.speed_kmh.tolist()
        angles = self.angle_deg.tolist()
        distances = self.distance_km.tolist()
        return [
            Call(
                service=services[codes[index]],
                bandwidth_units=bandwidths[index],
                call_type=CallType.NEW,
                user_state=UserState(
                    speed_kmh=speeds[index],
                    angle_deg=angles[index],
                    distance_km=distances[index],
                ),
                requested_at=arrivals[index],
                holding_time_s=holdings[index],
                # Per-run sequential ids (not the process-global counter), so
                # run outputs — traces, and anything keyed or seeded by id —
                # are a pure function of the config, identical in any process
                # or execution order.
                call_id=index + 1,
            )
            for index in range(len(arrivals))
        ]


def build_trace_arrays(
    config: BatchExperimentConfig, streams: StreamFactory
) -> TraceArrays:
    """Draw the whole trace as columns — bit-identical to the object path.

    A pure function of ``(config, streams)``, like :func:`build_requests`
    (which materializes its objects from these columns).  Each attribute
    draws from its own named stream, and the streams are independent, so
    batching per stream preserves the historical per-request draw sequence
    bit for bit: sized numpy draws consume each generator exactly like the
    scalar loops did — for the legacy no-workload sequence and for every
    :data:`~repro.workloads.spec.WORKLOADS` arrival model.
    """
    arrival_rng = streams.stream("arrivals")
    class_rng = streams.stream("service-class")
    user_rng = streams.stream("user-state")
    holding_rng = streams.stream("holding-time")

    count = config.request_count
    if config.workload is None:
        # The legacy draw sequence (sorted uniforms over the window),
        # reproduced bit for bit by the vectorized order statistics.
        arrival_times = np.sort(
            arrival_rng.uniform_batch(0.0, config.arrival_window_s, count)
        )
    else:
        arrival_times = config.workload.arrival.batch_arrival_times_array(
            arrival_rng, count, config.arrival_window_s
        )
    mix = config.effective_traffic_mix()
    class_codes = mix.sample_class_codes(class_rng, count)
    speed, angle, distance = config.user_profile.sample_columns(user_rng, count)
    holding = holding_rng.exponential_by_means(
        mix.mean_holding_by_code()[class_codes]
    )
    return TraceArrays(
        services=mix.services,
        arrival_time_s=arrival_times,
        class_codes=class_codes,
        bandwidth_units=mix.bandwidth_by_code()[class_codes],
        holding_time_s=holding,
        speed_kmh=speed,
        angle_deg=angle,
        distance_km=distance,
    )


def build_requests(config: BatchExperimentConfig, streams: StreamFactory) -> list[Call]:
    """Draw the arrival times, service classes and user states of all requests.

    A pure function of ``(config, streams)``: the same seeded configuration
    always yields the same trace, which is what lets the trace-driven
    pipeline (:mod:`repro.simulation.trace`) materialize a whole workload
    offline and replay it through the batched admission path.  The draws
    happen columnar-ly in :func:`build_trace_arrays`; this merely
    materializes the `Call` objects, so the two representations can never
    drift apart.
    """
    return build_trace_arrays(config, streams).to_calls()


def run_batch_experiment(
    config: BatchExperimentConfig,
    controller_factory: ControllerFactory,
    collect_trace: bool = False,
) -> BatchRunOutput:
    """Run one batch experiment and return metrics (and optionally the trace)."""
    streams = StreamFactory(master_seed=config.stream_master_seed)
    requests = build_requests(config, streams)

    env = Environment()
    station = BaseStation(capacity_bu=config.capacity_bu)
    controller = controller_factory()
    controller.reset()
    metrics = MetricsCollector()
    records: list[BatchCallRecord] = []
    peak_occupancy = 0

    def departure(call: Call):
        yield env.timeout(call.holding_time_s)
        station.release(call)
        call.complete(env.now)
        controller.on_released(call, station, env.now)
        metrics.record_completion(call)

    def arrival_process():
        nonlocal peak_occupancy
        for call in requests:
            delay = call.requested_at - env.now
            if delay > 0:
                yield env.timeout(delay)
            occupancy_before = station.used_bu
            metrics.record_request(call)
            decision = controller.decide(call, station, env.now)
            accepted = decision.accepted and station.can_fit(call.bandwidth_units)
            if accepted:
                station.allocate(call)
                call.admit(env.now, station.station_id)
                controller.on_admitted(call, station, env.now)
                env.process(departure(call), name=f"departure-{call.call_id}")
                peak_occupancy = max(peak_occupancy, station.used_bu)
            else:
                call.block(env.now, station.station_id)
            metrics.record_decision(call, accepted)
            if collect_trace:
                records.append(
                    BatchCallRecord(
                        call_id=call.call_id,
                        arrival_time_s=env.now,
                        service=call.service,
                        bandwidth_units=call.bandwidth_units,
                        user_state=call.user_state,
                        accepted=accepted,
                        score=decision.score,
                        occupancy_before_bu=occupancy_before,
                    )
                )

    env.process(arrival_process(), name="arrivals")
    env.run()

    snapshot: CallMetrics = metrics.snapshot()
    parameters = {
        "request_count": float(config.request_count),
        "capacity_bu": float(config.capacity_bu),
        "arrival_window_s": float(config.arrival_window_s),
    }
    profile = config.user_profile
    if profile.speed_kmh is not None:
        parameters["speed_kmh"] = float(profile.speed_kmh)
    if profile.angle_deg is not None:
        parameters["angle_deg"] = float(profile.angle_deg)
    if profile.distance_km is not None:
        parameters["distance_km"] = float(profile.distance_km)

    result = RunResult(
        controller=controller.name,
        metrics=snapshot,
        parameters=parameters,
        seed=config.seed,
    )
    class_names = () if config.workload is None else config.workload.class_names()
    return BatchRunOutput(
        result=result,
        records=tuple(records),
        peak_occupancy_bu=peak_occupancy,
        class_names=class_names,
        class_values=metrics.class_counter_values(class_names),
    )


def run_batch_experiment_row(
    config: BatchExperimentConfig,
    controller_factory: ControllerFactory,
    label: str | None = None,
) -> FrameRow:
    """Run one batch experiment and emit its compact counter row.

    This is what sweep workers return instead of the heavyweight run
    output: a flat tuple of counters and parameters the columnar
    :class:`~repro.analysis.frame.MetricsFrame` stacks and
    ``group_reduce``-s, so nothing richer ever crosses a process boundary.
    """
    output = run_batch_experiment(config, controller_factory)
    return run_result_row(
        output.result,
        label=label,
        replication=config.replication,
        class_names=output.class_names,
        class_values=output.class_values,
    )
