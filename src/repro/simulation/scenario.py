"""Named scenario builders: the paper's figure workloads as ready-made configs.

Each builder returns the ``variants`` mapping expected by
:func:`repro.simulation.sweep.run_acceptance_sweep`: curve label → (batch
config, controller factory).  The experiments layer and the examples both go
through these builders so the workload definitions live in exactly one place.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable, Mapping, Sequence

from ..cac.base import AdmissionController
from ..cac.complete_sharing import CompleteSharingController
from ..cac.facs.system import FACSConfig, FuzzyAdmissionControlSystem
from ..cac.guard_channel import GuardChannelController
from ..cac.scc.system import SCCConfig, ShadowClusterController
from ..cac.threshold_policy import ThresholdPolicyController
from ..cellular.mobility import UserProfile
from .config import BatchExperimentConfig

if TYPE_CHECKING:  # pragma: no cover
    from ..workloads import WorkloadSpec

__all__ = [
    "FACSControllerFactory",
    "SCCControllerFactory",
    "facs_factory",
    "scc_factory",
    "PAPER_SPEED_VALUES_KMH",
    "PAPER_ANGLE_VALUES_DEG",
    "PAPER_DISTANCE_VALUES_KM",
    "speed_sweep_variants",
    "angle_sweep_variants",
    "distance_sweep_variants",
    "controller_comparison_variants",
    "baseline_comparison_variants",
    "with_workload",
]

ControllerFactory = Callable[[], AdmissionController]
Variant = tuple[BatchExperimentConfig, ControllerFactory]

#: Curve parameters of Fig. 7 (user speed in km/h).
PAPER_SPEED_VALUES_KMH: tuple[float, ...] = (4.0, 10.0, 30.0, 60.0)
#: Curve parameters of Fig. 8 (user angle in degrees).
PAPER_ANGLE_VALUES_DEG: tuple[float, ...] = (0.0, 30.0, 50.0, 60.0, 90.0)
#: Curve parameters of Fig. 9 (user-to-BS distance in km).
PAPER_DISTANCE_VALUES_KM: tuple[float, ...] = (1.0, 3.0, 7.0, 10.0)


# The factories are frozen-dataclass callables rather than lambdas so sweep
# tasks can be pickled into the parallel executor's worker processes.
@dataclass(frozen=True)
class FACSControllerFactory:
    """Picklable factory of fresh FACS controllers (one instance per run)."""

    config: FACSConfig | None = None

    def __call__(self) -> AdmissionController:
        return FuzzyAdmissionControlSystem(self.config)


@dataclass(frozen=True)
class SCCControllerFactory:
    """Picklable factory of fresh SCC controllers (one instance per run)."""

    config: SCCConfig | None = None

    def __call__(self) -> AdmissionController:
        return ShadowClusterController(self.config)


def facs_factory(config: FACSConfig | None = None) -> ControllerFactory:
    """Factory of FACS controllers (one fresh instance per run)."""
    return FACSControllerFactory(config)


def scc_factory(config: SCCConfig | None = None) -> ControllerFactory:
    """Factory of SCC controllers (one fresh instance per run)."""
    return SCCControllerFactory(config)


def _base_config(seed: int) -> BatchExperimentConfig:
    return BatchExperimentConfig(seed=seed)


def with_workload(
    variants: Mapping[str, Variant], workload: "WorkloadSpec | None"
) -> Mapping[str, Variant]:
    """Re-seat every variant config onto ``workload``.

    ``None`` returns ``variants`` unchanged (the legacy Poisson arrivals),
    so figure reproductions without a workload stay byte-identical.
    """
    if workload is None:
        return variants
    return {
        label: (replace(config, workload=workload), factory)
        for label, (config, factory) in variants.items()
    }


def speed_sweep_variants(
    speeds_kmh: Sequence[float] = PAPER_SPEED_VALUES_KMH,
    seed: int = 20070607,
    facs_config: FACSConfig | None = None,
) -> Mapping[str, Variant]:
    """Fig. 7 workload: fixed speed per curve, random angle and distance."""
    variants: dict[str, Variant] = {}
    for speed in speeds_kmh:
        profile = UserProfile(speed_kmh=speed)
        config = _base_config(seed).with_profile(profile)
        variants[f"{speed:g}km/h"] = (config, facs_factory(facs_config))
    return variants


def angle_sweep_variants(
    angles_deg: Sequence[float] = PAPER_ANGLE_VALUES_DEG,
    seed: int = 20070608,
    facs_config: FACSConfig | None = None,
) -> Mapping[str, Variant]:
    """Fig. 8 workload: fixed angle per curve, random speed and distance."""
    variants: dict[str, Variant] = {}
    for angle in angles_deg:
        profile = UserProfile(angle_deg=angle)
        config = _base_config(seed).with_profile(profile)
        variants[f"Angle={angle:g}"] = (config, facs_factory(facs_config))
    return variants


def distance_sweep_variants(
    distances_km: Sequence[float] = PAPER_DISTANCE_VALUES_KM,
    seed: int = 20070609,
    facs_config: FACSConfig | None = None,
) -> Mapping[str, Variant]:
    """Fig. 9 workload: fixed distance per curve, random speed and angle."""
    variants: dict[str, Variant] = {}
    for distance in distances_km:
        profile = UserProfile(distance_km=distance)
        config = _base_config(seed).with_profile(profile)
        variants[f"{distance:g}km"] = (config, facs_factory(facs_config))
    return variants


def controller_comparison_variants(
    seed: int = 20070610,
    facs_config: FACSConfig | None = None,
    scc_config: SCCConfig | None = None,
) -> Mapping[str, Variant]:
    """Fig. 10 workload: fully random user attributes, FACS vs SCC."""
    config = _base_config(seed)
    return {
        "FACS": (config, facs_factory(facs_config)),
        "SCC": (config, scc_factory(scc_config)),
    }


def baseline_comparison_variants(seed: int = 20070611) -> Mapping[str, Variant]:
    """Ablation workload: FACS against the classic non-fuzzy baselines."""
    config = _base_config(seed)
    return {
        "FACS": (config, facs_factory()),
        "SCC": (config, scc_factory()),
        "CS": (config, CompleteSharingController),
        "GuardChannel": (config, GuardChannelController),
        "Threshold": (config, ThresholdPolicyController),
    }
