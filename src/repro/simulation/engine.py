"""Multi-cell network simulation with mobility and handoffs.

This is the integration experiment supporting the paper's QoS claim: calls
arrive per cell as Poisson processes, mobile terminals move with a
Gauss–Markov model, and active calls hand off between cells.  Each cell runs
its own instance of the configured admission controller (as a real deployment
would), and the run reports blocking, dropping and handoff statistics per
controller.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Callable

from ..analysis.frame import FrameRow, network_output_row
from ..cac.base import AdmissionController
from ..cellular.calls import Call, CallType
from ..cellular.cell import Cell
from ..cellular.geometry import Point
from ..cellular.metrics import CallMetrics, MetricsCollector
from ..cellular.mobility import GaussMarkovModel, MobileTerminal, UserState
from ..cellular.network import CellularNetwork
from ..des.environment import Environment
from ..des.rng import RandomStream, StreamFactory
from .config import NetworkExperimentConfig
from .results import RunResult

__all__ = [
    "NetworkRunOutput",
    "NetworkSimulation",
    "run_network_experiment",
    "run_network_experiment_row",
]

ControllerFactory = Callable[[], AdmissionController]


@dataclass(frozen=True)
class NetworkRunOutput:
    """Outcome of one multi-cell run."""

    result: RunResult
    handoff_attempts: int
    handoff_failures: int
    completed_calls: int
    dropped_calls: int
    time_average_occupancy_bu: float
    #: Per-service-class admission counters, attached only by workload
    #: runs: the class names and the values flattened class-major over
    #: :data:`repro.analysis.frame.CLASS_COUNTER_FIELDS`.
    class_names: tuple[str, ...] = ()
    class_values: tuple[float, ...] = ()

    @property
    def handoff_failure_ratio(self) -> float:
        if self.handoff_attempts == 0:
            return 0.0
        return self.handoff_failures / self.handoff_attempts


class NetworkSimulation:
    """Drives one multi-cell simulation run."""

    def __init__(self, config: NetworkExperimentConfig, controller_factory: ControllerFactory):
        self._config = config
        self._streams = StreamFactory(master_seed=config.stream_master_seed)
        # Per-run sequential ids (not the process-global counter), so run
        # outputs are a pure function of the config in any process, thread
        # or execution order — the same discipline as the batch experiment.
        self._call_ids = itertools.count(1)
        self._env = Environment()
        self._network = CellularNetwork(
            rings=config.rings,
            cell_radius_km=config.cell_radius_km,
            capacity_bu=config.capacity_bu,
            cell_capacities=config.cell_capacities,
        )
        self._controllers: dict[int, AdmissionController] = {}
        for cell in self._network:
            controller = controller_factory()
            controller.reset()
            self._controllers[cell.cell_id] = controller
        self._controller_name = next(iter(self._controllers.values())).name
        self._metrics = MetricsCollector()
        self._mobility = GaussMarkovModel(
            mean_speed_kmh=config.mean_speed_kmh,
            update_interval_s=config.mobility_update_s,
        )
        self._handoff_attempts = 0
        self._handoff_failures = 0
        self._completed = 0
        self._dropped = 0
        self._occupancy_time_integral = 0.0
        self._last_occupancy_sample = 0.0

    # ------------------------------------------------------------------
    @property
    def network(self) -> CellularNetwork:
        return self._network

    @property
    def environment(self) -> Environment:
        return self._env

    def controller_for(self, cell: Cell) -> AdmissionController:
        return self._controllers[cell.cell_id]

    # ------------------------------------------------------------------
    def _observe(self, terminal: MobileTerminal, cell: Cell) -> UserState:
        state = terminal.observe(cell.base_station.position)
        # Clamp the distance into the controllers' 0-10 km universe.
        return state.clamped()

    def _spawn_terminal(self, cell: Cell, rng: RandomStream) -> MobileTerminal:
        """Place a new mobile terminal uniformly within a cell."""
        radius = self._config.cell_radius_km * math.sqrt(rng.uniform(0.0, 1.0))
        angle = rng.uniform(-180.0, 180.0)
        offset_x = radius * math.cos(math.radians(angle))
        offset_y = radius * math.sin(math.radians(angle))
        position = Point(cell.center.x + offset_x, cell.center.y + offset_y)
        speed = max(rng.normal(self._config.mean_speed_kmh, self._config.mean_speed_kmh / 3.0), 0.0)
        heading = rng.angle_degrees()
        return MobileTerminal(position=position, speed_kmh=speed, heading_deg=heading)

    # -- processes -------------------------------------------------------
    def _call_lifecycle(self, call: Call, terminal: MobileTerminal, cell: Cell):
        """Process controlling one admitted call: mobility, handoffs, completion."""
        mobility_rng = self._streams.stream("mobility")
        elapsed = 0.0
        current_cell = cell
        while elapsed < call.holding_time_s:
            step = min(self._config.mobility_update_s, call.holding_time_s - elapsed)
            yield self._env.timeout(step)
            elapsed += step
            self._mobility.update(terminal, step, mobility_rng)
            new_cell = self._network.serving_cell(terminal.position)
            if new_cell is None:
                # Out of coverage: treat as a dropped call.
                current_cell.base_station.release(call)
                call.drop(self._env.now, reason="left network coverage")
                self._controllers[current_cell.cell_id].on_released(
                    call, current_cell.base_station, self._env.now
                )
                self._dropped += 1
                self._metrics.record_completion(call)
                return
            if new_cell.cell_id != current_cell.cell_id:
                self._handoff_attempts += 1
                outcome_cell = self._attempt_handoff(call, terminal, current_cell, new_cell)
                if outcome_cell is None:
                    self._handoff_failures += 1
                    self._dropped += 1
                    self._metrics.record_completion(call)
                    return
                current_cell = outcome_cell
        # Holding time elapsed: normal completion.
        current_cell.base_station.release(call)
        call.complete(self._env.now)
        self._controllers[current_cell.cell_id].on_released(
            call, current_cell.base_station, self._env.now
        )
        self._completed += 1
        self._metrics.record_completion(call)

    def _attempt_handoff(
        self,
        call: Call,
        terminal: MobileTerminal,
        source: Cell,
        target: Cell,
    ) -> Cell | None:
        """Try to move an active call to ``target``; return the new cell or None if dropped."""
        controller = self._controllers[target.cell_id]
        handoff_request = Call(
            service=call.service,
            bandwidth_units=call.bandwidth_units,
            call_type=CallType.HANDOFF,
            user_state=self._observe(terminal, target),
            requested_at=self._env.now,
            holding_time_s=call.holding_time_s,
            call_id=next(self._call_ids),
        )
        self._metrics.record_request(handoff_request)
        decision = controller.decide(handoff_request, target.base_station, self._env.now)
        accepted = decision.accepted and target.base_station.can_fit(call.bandwidth_units)
        self._metrics.record_decision(handoff_request, accepted)
        source_controller = self._controllers[source.cell_id]
        if accepted:
            source.base_station.release(call)
            source_controller.on_released(call, source.base_station, self._env.now)
            target.base_station.allocate(call)
            call.handoff(self._env.now, target.cell_id)
            controller.on_admitted(call, target.base_station, self._env.now)
            return target
        source.base_station.release(call)
        source_controller.on_released(call, source.base_station, self._env.now)
        call.drop(self._env.now, reason=f"handoff to cell {target.cell_id} denied")
        return None

    def _cell_arrival_process(self, cell: Cell):
        """New-call arrivals at one cell (Poisson, or the workload's model)."""
        arrival_rng = self._streams.stream(f"arrivals-{cell.cell_id}")
        class_rng = self._streams.stream(f"class-{cell.cell_id}")
        terminal_rng = self._streams.stream(f"terminal-{cell.cell_id}")
        holding_rng = self._streams.stream(f"holding-{cell.cell_id}")
        mix = self._config.effective_traffic_mix()
        workload = self._config.workload
        # workload=None keeps the exact legacy draw sequence; a workload
        # swaps in its interarrival sampler on the same per-cell stream.
        sampler = (
            None
            if workload is None
            else workload.arrival.sampler(
                arrival_rng, self._config.arrival_rate_per_cell_per_s
            )
        )
        while True:
            if sampler is None:
                yield self._env.timeout(
                    arrival_rng.exponential(1.0 / self._config.arrival_rate_per_cell_per_s)
                )
            else:
                yield self._env.timeout(sampler.next_interarrival(self._env.now))
            if self._env.now >= self._config.duration_s:
                return
            service = mix.sample_class(class_rng)
            spec = mix.spec(service)
            terminal = self._spawn_terminal(cell, terminal_rng)
            call = Call(
                service=service,
                bandwidth_units=spec.bandwidth_units,
                call_type=CallType.NEW,
                user_state=self._observe(terminal, cell),
                requested_at=self._env.now,
                holding_time_s=holding_rng.exponential(spec.mean_holding_time_s),
                call_id=next(self._call_ids),
            )
            controller = self._controllers[cell.cell_id]
            self._metrics.record_request(call)
            decision = controller.decide(call, cell.base_station, self._env.now)
            accepted = decision.accepted and cell.base_station.can_fit(call.bandwidth_units)
            self._metrics.record_decision(call, accepted)
            if accepted:
                cell.base_station.allocate(call)
                call.admit(self._env.now, cell.cell_id)
                controller.on_admitted(call, cell.base_station, self._env.now)
                self._env.process(
                    self._call_lifecycle(call, terminal, cell),
                    name=f"call-{call.call_id}",
                )
            else:
                call.block(self._env.now, cell.cell_id)

    def _occupancy_sampler(self):
        """Sample network occupancy every mobility interval for the time average."""
        while self._env.now < self._config.duration_s:
            yield self._env.timeout(self._config.mobility_update_s)
            self._occupancy_time_integral += (
                self._network.total_used_bu() * self._config.mobility_update_s
            )
            self._last_occupancy_sample = self._env.now

    # ------------------------------------------------------------------
    def run(self) -> NetworkRunOutput:
        """Execute the simulation and return aggregated results."""
        for cell in self._network:
            self._env.process(self._cell_arrival_process(cell), name=f"arrivals-{cell.cell_id}")
        self._env.process(self._occupancy_sampler(), name="occupancy-sampler")
        # Run well past the arrival horizon so in-flight calls finish.
        self._env.run(until=self._config.duration_s * 3.0)

        metrics: CallMetrics = self._metrics.snapshot()
        elapsed = max(self._last_occupancy_sample, self._config.mobility_update_s)
        result = RunResult(
            controller=self._controller_name,
            metrics=metrics,
            parameters={
                "rings": float(self._config.rings),
                "cells": float(self._network.cell_count),
                "arrival_rate_per_cell_per_s": self._config.arrival_rate_per_cell_per_s,
                "duration_s": self._config.duration_s,
            },
            seed=self._config.seed,
        )
        workload = self._config.workload
        class_names = () if workload is None else workload.class_names()
        return NetworkRunOutput(
            result=result,
            handoff_attempts=self._handoff_attempts,
            handoff_failures=self._handoff_failures,
            completed_calls=self._completed,
            dropped_calls=self._dropped,
            time_average_occupancy_bu=self._occupancy_time_integral / elapsed,
            class_names=class_names,
            class_values=self._metrics.class_counter_values(class_names),
        )


def run_network_experiment(
    config: NetworkExperimentConfig,
    controller_factory: ControllerFactory,
) -> NetworkRunOutput:
    """Convenience wrapper: build and run a :class:`NetworkSimulation`."""
    return NetworkSimulation(config, controller_factory).run()


def run_network_experiment_row(
    config: NetworkExperimentConfig,
    controller_factory: ControllerFactory,
    label: str | None = None,
) -> FrameRow:
    """Run one network experiment and emit its compact counter row.

    The sweep workers' return value: the flat counter/parameter tuple the
    columnar :class:`~repro.analysis.frame.MetricsFrame` is built from,
    replacing the pickled :class:`NetworkRunOutput` trees that used to
    travel from process-pool workers back to the parent.
    """
    output = NetworkSimulation(config, controller_factory).run()
    return network_output_row(output, label=label, replication=config.replication)
