"""Per-cell shard workers with message-passing handoffs.

The coupled :class:`~repro.simulation.engine.NetworkSimulation` runs the
whole hexagonal topology inside one discrete-event loop: a handoff is a
synchronous method call that touches two cells' state in the same process.
That is faithful but unscalable — the topology cannot be split across
workers because every cell shares one event list, one mobility stream and
one call-id counter.

This module is the distributed shape of the same experiment: every cell of
the topology runs as its own *shard* — an actor owning its cell, its
controller instance, its DES environment and its named random streams —
and handoffs travel between shards as explicit :class:`HandoffMessage`
values through per-edge queues.  No state is ever shared between shards.

Determinism is the headline guarantee, achieved with a conservative
time-window protocol:

* The coordinator advances simulated time in windows of ``window_s``
  (default: the mobility update interval).  Within a window every shard
  simulates independently; a call crossing a cell boundary releases its
  bandwidth at the source and becomes a buffered outbound message.
* At the window barrier the coordinator routes all messages, and each
  shard drains its inbound queue in the canonical
  ``(time, source_cell, call_id)`` order before simulating the next
  window.  The admission attempt at the target cell happens at the
  barrier instant.

Because each shard's evolution is a pure function of its seeded
configuration and its canonically ordered inbound messages, the run output
is **byte-identical across the serial, thread and process backends at any
worker count**.  At ``rings=0`` (a single cell, no handoffs) the shard
engine reproduces the coupled :func:`run_network_experiment` output
exactly, bit for bit — the anchor the equivalence tests lock down.  At
``rings>=1`` the results are *near* the coupled run but not identical, for
two documented reasons: the coupled engine draws all calls' mobility from
one shared stream in global event order (shards each own a per-cell
mobility stream), and handoff admission is deferred from the crossing
instant to the next window barrier (the call holds bandwidth in neither
cell while in transit, and its holding clock freezes until delivery).
``tests/simulation/test_shard.py`` quantifies the delta: per-cell new-call
arrival schedules are stream-identical to the coupled run at any rings.
"""

from __future__ import annotations

import itertools
import math
import multiprocessing
import os
import pickle
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from ..analysis.frame import FrameRow, network_output_row
from ..cellular.calls import Call, CallType
from ..cellular.cell import Cell
from ..cellular.geometry import HexCoordinate, Point, hex_spiral
from ..cellular.metrics import CallMetrics, MetricsCollector
from ..cellular.mobility import GaussMarkovModel, MobileTerminal, UserState
from ..cellular.network import hex_cell_count
from ..cellular.traffic import ServiceClass
from ..des.environment import Environment
from ..des.rng import RandomStream, StreamFactory
from .config import NetworkExperimentConfig
from .engine import ControllerFactory, NetworkRunOutput
from .executor import (
    ProcessPoolSweepExecutor,
    SerialExecutor,
    SweepExecutionError,
    SweepExecutor,
    ThreadPoolSweepExecutor,
    executor_by_name,
)
from .results import RunResult

__all__ = [
    "HandoffMessage",
    "CellShard",
    "ShardOutcome",
    "CoupledShardedNetworkSimulation",
    "run_coupled_sharded_network_experiment",
    "run_coupled_sharded_network_experiment_row",
]

#: Width of each shard's call-id namespace.  Shard ``k`` (cell id ``k``)
#: issues ids ``(k-1) * _CALL_ID_NAMESPACE + 1, 2, 3, ...`` — globally
#: unique without coordination, and cell 1 issues the plain ``1, 2, 3,
#: ...`` sequence the coupled engine's per-run counter produces for a
#: single-cell topology (the rings=0 exactness anchor).
_CALL_ID_NAMESPACE = 1 << 40


@dataclass(frozen=True)
class HandoffMessage:
    """A departing call crossing a shard boundary, as an explicit message.

    Carries everything the target shard needs to re-materialise the call
    and its mobile terminal: the call's identity and service demand, how
    much holding time it has consumed, and the terminal's kinematic state
    at the crossing instant.  ``(time, source_cell, call_id)`` is the
    canonical drain order at the receiving shard — a total order, since a
    source shard emits at most one message per call per instant.
    """

    time: float
    source_cell: int
    target_cell: int
    call_id: int
    service: ServiceClass
    bandwidth_units: int
    holding_time_s: float
    elapsed_s: float
    requested_at: float
    handoff_count: int
    position_x: float
    position_y: float
    speed_kmh: float
    heading_deg: float

    @property
    def sort_key(self) -> tuple[float, int, int]:
        return (self.time, self.source_cell, self.call_id)


@dataclass(frozen=True)
class ShardOutcome:
    """Final per-shard statistics, summed by the coordinator."""

    cell_id: int
    controller: str
    counters: tuple[int, ...]
    handoff_attempts: int
    handoff_failures: int
    completed_calls: int
    dropped_calls: int
    occupancy_time_integral: float
    last_occupancy_sample: float
    #: Per-service-class counters (workload runs only), flattened
    #: class-major over :data:`repro.analysis.frame.CLASS_COUNTER_FIELDS`.
    class_values: tuple[float, ...] = ()


class CellShard:
    """One cell of the topology running as an independent actor.

    Owns a single :class:`~repro.cellular.cell.Cell`, a fresh controller
    instance, its own :class:`~repro.des.environment.Environment` and a
    :class:`~repro.des.rng.StreamFactory` seeded with the run's master
    seed — so the per-cell named streams (``arrivals-<id>``,
    ``class-<id>``, ``terminal-<id>``, ``holding-<id>``) are *the same
    streams* the coupled engine draws for that cell.  The only interface
    to the rest of the network is :meth:`step_to`: inbound handoff
    messages in, outbound handoff messages back.
    """

    def __init__(
        self,
        cell_id: int,
        config: NetworkExperimentConfig,
        controller_factory: ControllerFactory,
        spiral: list[HexCoordinate] | None = None,
    ):
        self._config = config
        if spiral is None:
            spiral = hex_spiral(HexCoordinate(0, 0), config.rings)
        #: Static topology knowledge: axial coordinate -> cell id for the
        #: whole layout, enough to classify a moved terminal as staying,
        #: handing off, or leaving coverage — without any other shard's state.
        self._cell_ids_by_coordinate = {
            coordinate: index for index, coordinate in enumerate(spiral, start=1)
        }
        self._cell = Cell(
            coordinate=spiral[cell_id - 1],
            radius_km=config.cell_radius_km,
            capacity_bu=config.capacity_for(cell_id - 1),
            cell_id=cell_id,
        )
        self._env = Environment()
        self._streams = StreamFactory(master_seed=config.stream_master_seed)
        self._call_ids = itertools.count(1)
        controller = controller_factory()
        controller.reset()
        self._controller = controller
        self._metrics = MetricsCollector()
        self._mobility = GaussMarkovModel(
            mean_speed_kmh=config.mean_speed_kmh,
            update_interval_s=config.mobility_update_s,
        )
        self._handoff_attempts = 0
        self._handoff_failures = 0
        self._completed = 0
        self._dropped = 0
        self._occupancy_time_integral = 0.0
        self._last_occupancy_sample = 0.0
        self._outbox: list[HandoffMessage] = []
        # Same start order as the coupled engine: arrivals, then sampler.
        self._env.process(
            self._arrival_process(), name=f"arrivals-{cell_id}"
        )
        self._env.process(self._occupancy_sampler(), name="occupancy-sampler")

    # ------------------------------------------------------------------
    @property
    def cell_id(self) -> int:
        return self._cell.cell_id

    @property
    def busy(self) -> bool:
        """True while this shard still has scheduled events."""
        return self._env.pending_events > 0

    def _next_call_id(self) -> int:
        return (self._cell.cell_id - 1) * _CALL_ID_NAMESPACE + next(self._call_ids)

    def _observe(self, terminal: MobileTerminal) -> UserState:
        return terminal.observe(self._cell.base_station.position).clamped()

    def _spawn_terminal(self, rng: RandomStream) -> MobileTerminal:
        """Place a new mobile terminal uniformly within this shard's cell."""
        radius = self._config.cell_radius_km * math.sqrt(rng.uniform(0.0, 1.0))
        angle = rng.uniform(-180.0, 180.0)
        offset_x = radius * math.cos(math.radians(angle))
        offset_y = radius * math.sin(math.radians(angle))
        center = self._cell.center
        position = Point(center.x + offset_x, center.y + offset_y)
        speed = max(
            rng.normal(self._config.mean_speed_kmh, self._config.mean_speed_kmh / 3.0),
            0.0,
        )
        heading = rng.angle_degrees()
        return MobileTerminal(position=position, speed_kmh=speed, heading_deg=heading)

    # -- processes -------------------------------------------------------
    def _arrival_process(self):
        """New-call arrivals — the coupled engine's per-cell body."""
        cell = self._cell
        arrival_rng = self._streams.stream(f"arrivals-{cell.cell_id}")
        class_rng = self._streams.stream(f"class-{cell.cell_id}")
        terminal_rng = self._streams.stream(f"terminal-{cell.cell_id}")
        holding_rng = self._streams.stream(f"holding-{cell.cell_id}")
        mix = self._config.effective_traffic_mix()
        workload = self._config.workload
        # Mirrors the coupled engine exactly: workload=None keeps the
        # legacy draw sequence on the same per-cell stream.
        sampler = (
            None
            if workload is None
            else workload.arrival.sampler(
                arrival_rng, self._config.arrival_rate_per_cell_per_s
            )
        )
        while True:
            if sampler is None:
                yield self._env.timeout(
                    arrival_rng.exponential(1.0 / self._config.arrival_rate_per_cell_per_s)
                )
            else:
                yield self._env.timeout(sampler.next_interarrival(self._env.now))
            if self._env.now >= self._config.duration_s:
                return
            service = mix.sample_class(class_rng)
            spec = mix.spec(service)
            terminal = self._spawn_terminal(terminal_rng)
            call = Call(
                service=service,
                bandwidth_units=spec.bandwidth_units,
                call_type=CallType.NEW,
                user_state=self._observe(terminal),
                requested_at=self._env.now,
                holding_time_s=holding_rng.exponential(spec.mean_holding_time_s),
                call_id=self._next_call_id(),
            )
            self._metrics.record_request(call)
            decision = self._controller.decide(call, cell.base_station, self._env.now)
            accepted = decision.accepted and cell.base_station.can_fit(call.bandwidth_units)
            self._metrics.record_decision(call, accepted)
            if accepted:
                cell.base_station.allocate(call)
                call.admit(self._env.now, cell.cell_id)
                self._controller.on_admitted(call, cell.base_station, self._env.now)
                self._env.process(
                    self._call_lifecycle(call, terminal),
                    name=f"call-{call.call_id}",
                )
            else:
                call.block(self._env.now, cell.cell_id)

    def _call_lifecycle(self, call: Call, terminal: MobileTerminal, elapsed: float = 0.0):
        """One admitted call: mobility, departure-by-message, completion."""
        mobility_rng = self._streams.stream("mobility")
        while elapsed < call.holding_time_s:
            step = min(self._config.mobility_update_s, call.holding_time_s - elapsed)
            yield self._env.timeout(step)
            elapsed += step
            self._mobility.update(terminal, step, mobility_rng)
            coordinate = HexCoordinate.from_point(
                terminal.position, self._config.cell_radius_km
            )
            target_id = self._cell_ids_by_coordinate.get(coordinate)
            if target_id is None:
                # Out of coverage: treat as a dropped call.
                self._cell.base_station.release(call)
                call.drop(self._env.now, reason="left network coverage")
                self._controller.on_released(
                    call, self._cell.base_station, self._env.now
                )
                self._dropped += 1
                self._metrics.record_completion(call)
                return
            if target_id != self._cell.cell_id:
                # Departing handoff: release locally and emit a message;
                # the target shard decides admission at the next barrier.
                self._cell.base_station.release(call)
                self._controller.on_released(
                    call, self._cell.base_station, self._env.now
                )
                self._outbox.append(
                    HandoffMessage(
                        time=self._env.now,
                        source_cell=self._cell.cell_id,
                        target_cell=target_id,
                        call_id=call.call_id,
                        service=call.service,
                        bandwidth_units=call.bandwidth_units,
                        holding_time_s=call.holding_time_s,
                        elapsed_s=elapsed,
                        requested_at=call.requested_at,
                        handoff_count=call.handoff_count,
                        position_x=terminal.position.x,
                        position_y=terminal.position.y,
                        speed_kmh=terminal.speed_kmh,
                        heading_deg=terminal.heading_deg,
                    )
                )
                return
        # Holding time elapsed: normal completion.
        self._cell.base_station.release(call)
        call.complete(self._env.now)
        self._controller.on_released(call, self._cell.base_station, self._env.now)
        self._completed += 1
        self._metrics.record_completion(call)

    def _occupancy_sampler(self):
        """Sample this cell's occupancy every mobility interval."""
        while self._env.now < self._config.duration_s:
            yield self._env.timeout(self._config.mobility_update_s)
            self._occupancy_time_integral += (
                self._cell.base_station.used_bu * self._config.mobility_update_s
            )
            self._last_occupancy_sample = self._env.now

    # -- the actor interface ---------------------------------------------
    def _deliver(self, message: HandoffMessage) -> None:
        """Admit (or drop) one inbound handoff at the barrier instant."""
        now = self._env.now
        station = self._cell.base_station
        terminal = MobileTerminal(
            position=Point(message.position_x, message.position_y),
            speed_kmh=message.speed_kmh,
            heading_deg=message.heading_deg,
        )
        # Re-materialise the travelling call as it was when it left the
        # source cell; its id (and therefore its ledger key) is preserved.
        call = Call(
            service=message.service,
            bandwidth_units=message.bandwidth_units,
            call_type=CallType.NEW,
            requested_at=message.requested_at,
            holding_time_s=message.holding_time_s,
            call_id=message.call_id,
        )
        call.admit(message.time, message.source_cell)
        call.handoff_count = message.handoff_count
        self._handoff_attempts += 1
        request = Call(
            service=message.service,
            bandwidth_units=message.bandwidth_units,
            call_type=CallType.HANDOFF,
            user_state=self._observe(terminal),
            requested_at=now,
            holding_time_s=message.holding_time_s,
            call_id=self._next_call_id(),
        )
        self._metrics.record_request(request)
        decision = self._controller.decide(request, station, now)
        accepted = decision.accepted and station.can_fit(message.bandwidth_units)
        self._metrics.record_decision(request, accepted)
        if accepted:
            station.allocate(call)
            call.handoff(now, self._cell.cell_id)
            self._controller.on_admitted(call, station, now)
            self._env.process(
                self._call_lifecycle(call, terminal, elapsed=message.elapsed_s),
                name=f"call-{call.call_id}",
            )
        else:
            self._handoff_failures += 1
            self._dropped += 1
            call.drop(now, reason=f"handoff to cell {self._cell.cell_id} denied")
            self._metrics.record_completion(call)

    def step_to(self, until: float, inbound: list[HandoffMessage] = ()) -> list[HandoffMessage]:
        """Drain ``inbound`` (pre-sorted canonically), simulate to ``until``.

        Returns the handoff messages emitted during the window; the
        coordinator routes them at the barrier.
        """
        for message in inbound:
            self._deliver(message)
        self._env.run(until=until)
        outbox, self._outbox = self._outbox, []
        return outbox

    def outcome(self) -> ShardOutcome:
        """Final statistics of this shard, for the coordinator to sum."""
        workload = self._config.workload
        class_names = () if workload is None else workload.class_names()
        return ShardOutcome(
            cell_id=self._cell.cell_id,
            controller=self._controller.name,
            counters=self._metrics.snapshot().as_counters(),
            handoff_attempts=self._handoff_attempts,
            handoff_failures=self._handoff_failures,
            completed_calls=self._completed,
            dropped_calls=self._dropped,
            occupancy_time_integral=self._occupancy_time_integral,
            last_occupancy_sample=self._last_occupancy_sample,
            class_values=self._metrics.class_counter_values(class_names),
        )


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------
def _partition(items: list[int], parts: int) -> list[list[int]]:
    """Deterministic contiguous near-equal blocks (worker-count invariant)."""
    parts = max(1, min(parts, len(items)))
    base, extra = divmod(len(items), parts)
    blocks: list[list[int]] = []
    start = 0
    for index in range(parts):
        size = base + (1 if index < extra else 0)
        blocks.append(items[start : start + size])
        start += size
    return blocks


def _route(messages: list[HandoffMessage]) -> dict[int, list[HandoffMessage]]:
    """Per-target inbound queues in canonical ``(time, source, id)`` order."""
    inbound: dict[int, list[HandoffMessage]] = {}
    for message in sorted(messages, key=lambda m: m.sort_key):
        inbound.setdefault(message.target_cell, []).append(message)
    return inbound


def _shard_worker(connection, config, controller_factory, cell_ids) -> None:
    """Process-backend worker: owns a block of shards for the whole run."""
    try:
        spiral = hex_spiral(HexCoordinate(0, 0), config.rings)
        shards = [
            CellShard(cell_id, config, controller_factory, spiral)
            for cell_id in cell_ids
        ]
        while True:
            command = connection.recv()
            if command[0] == "step":
                _, until, inbound = command
                outbox: list[HandoffMessage] = []
                for shard in shards:
                    outbox.extend(shard.step_to(until, inbound.get(shard.cell_id, ())))
                busy = any(shard.busy for shard in shards)
                connection.send(("ok", outbox, busy))
            elif command[0] == "finish":
                connection.send(("ok", [shard.outcome() for shard in shards]))
                return
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"unknown shard command {command[0]!r}")
    except BaseException as exc:  # pragma: no cover - transport for the parent
        try:
            connection.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
        raise


class CoupledShardedNetworkSimulation:
    """Coordinator of one sharded-but-coupled multi-cell run.

    Builds one :class:`CellShard` per cell of the topology, advances them
    in conservative windows of ``window_s`` simulated seconds and routes
    :class:`HandoffMessage` values between them at each barrier.  The
    ``executor`` selects *where the shards live* (reusing the sweep
    executor vocabulary): :class:`SerialExecutor` steps them in-process in
    cell order, :class:`ThreadPoolSweepExecutor` steps them from a
    persistent thread pool, and :class:`ProcessPoolSweepExecutor`
    partitions the cells into contiguous blocks owned by persistent worker
    processes (actor-style — shard state never crosses the process
    boundary, only messages and final counters do).
    """

    def __init__(
        self,
        config: NetworkExperimentConfig,
        controller_factory: ControllerFactory,
        executor: SweepExecutor | str | None = None,
        window_s: float | None = None,
    ):
        if window_s is not None and window_s <= 0:
            raise ValueError(f"window_s must be positive, got {window_s}")
        self._config = config
        self._controller_factory = controller_factory
        self._window_s = window_s if window_s is not None else config.mobility_update_s
        self._backend, self._workers = _backend_of(executor)

    # ------------------------------------------------------------------
    def run(self) -> NetworkRunOutput:
        """Execute the sharded run and return the merged network output."""
        if self._backend == "process":
            outcomes = self._run_process()
        elif self._backend == "thread":
            outcomes = self._run_thread()
        else:
            outcomes = self._run_serial()
        return self._merge(sorted(outcomes, key=lambda o: o.cell_id))

    # -- backends --------------------------------------------------------
    def _windows(self):
        """Barrier times: ``window_s`` steps up to the coupled horizon."""
        horizon = self._config.duration_s * 3.0
        t = 0.0
        while t < horizon:
            t = min(t + self._window_s, horizon)
            yield t

    def _run_serial(self) -> list[ShardOutcome]:
        shards = self._build_shards()
        inbound: dict[int, list[HandoffMessage]] = {}
        for until in self._windows():
            outbox: list[HandoffMessage] = []
            for shard in shards:
                outbox.extend(shard.step_to(until, inbound.get(shard.cell_id, ())))
            inbound = _route(outbox)
            if not inbound and not any(shard.busy for shard in shards):
                break
        return [shard.outcome() for shard in shards]

    def _run_thread(self) -> list[ShardOutcome]:
        shards = self._build_shards()
        workers = min(self._pool_size(), len(shards))
        inbound: dict[int, list[HandoffMessage]] = {}
        with ThreadPoolExecutor(max_workers=workers) as pool:
            for until in self._windows():
                queues = [inbound.get(shard.cell_id, ()) for shard in shards]
                results = list(pool.map(
                    lambda pair: pair[0].step_to(until, pair[1]),
                    zip(shards, queues),
                ))
                inbound = _route([m for out in results for m in out])
                if not inbound and not any(shard.busy for shard in shards):
                    break
        return [shard.outcome() for shard in shards]

    def _run_process(self) -> list[ShardOutcome]:
        config, factory = self._config, self._controller_factory
        try:
            pickle.dumps((config, factory))
        except Exception as exc:
            raise SweepExecutionError(
                "sharded process execution requires picklable configs and "
                "controller factories; use the module-level factories in "
                f"repro.simulation.scenario ({exc})"
            ) from exc
        cell_ids = list(range(1, hex_cell_count(config.rings) + 1))
        blocks = _partition(cell_ids, self._pool_size())
        context = multiprocessing.get_context()
        workers = []
        try:
            for block in blocks:
                parent_end, child_end = context.Pipe()
                process = context.Process(
                    target=_shard_worker,
                    args=(child_end, config, factory, block),
                    daemon=True,
                )
                process.start()
                child_end.close()
                workers.append((process, parent_end, block))

            inbound: dict[int, list[HandoffMessage]] = {}
            for until in self._windows():
                for _, connection, block in workers:
                    connection.send(
                        ("step", until, {cid: inbound.get(cid, []) for cid in block})
                    )
                outbox: list[HandoffMessage] = []
                busy = False
                for _, connection, _ in workers:
                    reply = connection.recv()
                    if reply[0] != "ok":
                        raise SweepExecutionError(f"shard worker failed: {reply[1]}")
                    outbox.extend(reply[1])
                    busy = busy or reply[2]
                inbound = _route(outbox)
                if not inbound and not busy:
                    break

            outcomes: list[ShardOutcome] = []
            for _, connection, _ in workers:
                connection.send(("finish",))
            for _, connection, _ in workers:
                reply = connection.recv()
                if reply[0] != "ok":
                    raise SweepExecutionError(f"shard worker failed: {reply[1]}")
                outcomes.extend(reply[1])
            return outcomes
        finally:
            for process, connection, _ in workers:
                connection.close()
                process.join(timeout=5.0)
                if process.is_alive():  # pragma: no cover - defensive
                    process.terminate()
                    process.join()

    # -- helpers ---------------------------------------------------------
    def _build_shards(self) -> list[CellShard]:
        spiral = hex_spiral(HexCoordinate(0, 0), self._config.rings)
        return [
            CellShard(cell_id, self._config, self._controller_factory, spiral)
            for cell_id in range(1, len(spiral) + 1)
        ]

    def _pool_size(self) -> int:
        cells = hex_cell_count(self._config.rings)
        return min(self._workers or os.cpu_count() or 1, cells)

    def _merge(self, outcomes: list[ShardOutcome]) -> NetworkRunOutput:
        config = self._config
        counters = tuple(
            sum(outcome.counters[index] for outcome in outcomes)
            for index in range(len(CallMetrics.COUNTER_FIELDS))
        )
        metrics = CallMetrics.from_counters(counters)
        last_sample = max(outcome.last_occupancy_sample for outcome in outcomes)
        elapsed = max(last_sample, config.mobility_update_s)
        integral = sum(outcome.occupancy_time_integral for outcome in outcomes)
        result = RunResult(
            controller=outcomes[0].controller,
            metrics=metrics,
            parameters={
                "rings": float(config.rings),
                "cells": float(len(outcomes)),
                "arrival_rate_per_cell_per_s": config.arrival_rate_per_cell_per_s,
                "duration_s": config.duration_s,
            },
            seed=config.seed,
        )
        workload = config.workload
        class_names = () if workload is None else workload.class_names()
        class_values: tuple[float, ...] = ()
        if class_names:
            width = len(outcomes[0].class_values)
            class_values = tuple(
                sum(outcome.class_values[index] for outcome in outcomes)
                for index in range(width)
            )
        return NetworkRunOutput(
            result=result,
            handoff_attempts=sum(o.handoff_attempts for o in outcomes),
            handoff_failures=sum(o.handoff_failures for o in outcomes),
            completed_calls=sum(o.completed_calls for o in outcomes),
            dropped_calls=sum(o.dropped_calls for o in outcomes),
            time_average_occupancy_bu=integral / elapsed,
            class_names=class_names,
            class_values=class_values,
        )


def _backend_of(executor: SweepExecutor | str | None) -> tuple[str, int | None]:
    """Map the sweep-executor vocabulary onto a shard backend + pool size."""
    if executor is None:
        return "serial", None
    if isinstance(executor, str):
        executor = executor_by_name(executor)
    if isinstance(executor, SerialExecutor):
        return "serial", None
    if isinstance(executor, ProcessPoolSweepExecutor):
        return "process", executor.max_workers
    if isinstance(executor, ThreadPoolSweepExecutor):
        return "thread", executor.max_workers
    raise TypeError(
        f"executor must be a SweepExecutor, an executor name or None, "
        f"got {type(executor).__name__}"
    )


def run_coupled_sharded_network_experiment(
    config: NetworkExperimentConfig,
    controller_factory: ControllerFactory,
    executor: SweepExecutor | str | None = None,
    window_s: float | None = None,
) -> NetworkRunOutput:
    """Run one multi-cell experiment with per-cell shard workers.

    The message-passing counterpart of
    :func:`~repro.simulation.engine.run_network_experiment`: handoff
    coupling is preserved (departing calls are admitted by the neighbour
    shard), but every cell runs as an isolated actor, so the topology
    scales across the ``executor``'s workers.  The output is byte-identical
    for every backend and worker count.
    """
    return CoupledShardedNetworkSimulation(
        config, controller_factory, executor=executor, window_s=window_s
    ).run()


def run_coupled_sharded_network_experiment_row(
    config: NetworkExperimentConfig,
    controller_factory: ControllerFactory,
    label: str | None = None,
    executor: SweepExecutor | str | None = None,
    window_s: float | None = None,
) -> FrameRow:
    """Run one sharded experiment and emit its compact counter row."""
    output = run_coupled_sharded_network_experiment(
        config, controller_factory, executor=executor, window_s=window_s
    )
    return network_output_row(output, label=label, replication=config.replication)
