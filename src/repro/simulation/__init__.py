"""Simulation and experiment layer: configs, batch runs, sweeps, network runs."""

from .config import BatchExperimentConfig, NetworkExperimentConfig, PAPER_REQUEST_COUNTS
from .batch import BatchCallRecord, BatchRunOutput, run_batch_experiment
from .engine import NetworkRunOutput, NetworkSimulation, run_network_experiment
from .executor import (
    EXECUTOR_CHOICES,
    ProcessPoolSweepExecutor,
    SerialExecutor,
    SweepExecutionError,
    SweepExecutor,
    executor_by_name,
)
from .results import AggregatedResult, RunResult, aggregate_runs
from .scenario import (
    FACSControllerFactory,
    PAPER_ANGLE_VALUES_DEG,
    PAPER_DISTANCE_VALUES_KM,
    PAPER_SPEED_VALUES_KMH,
    SCCControllerFactory,
    angle_sweep_variants,
    baseline_comparison_variants,
    controller_comparison_variants,
    distance_sweep_variants,
    facs_factory,
    scc_factory,
    speed_sweep_variants,
)
from .sweep import (
    ReplicationTask,
    SweepCurve,
    SweepPoint,
    SweepResult,
    run_acceptance_sweep,
)

__all__ = [
    "BatchExperimentConfig",
    "NetworkExperimentConfig",
    "PAPER_REQUEST_COUNTS",
    "BatchCallRecord",
    "BatchRunOutput",
    "run_batch_experiment",
    "NetworkRunOutput",
    "NetworkSimulation",
    "run_network_experiment",
    "RunResult",
    "AggregatedResult",
    "aggregate_runs",
    "SweepPoint",
    "SweepCurve",
    "SweepResult",
    "ReplicationTask",
    "run_acceptance_sweep",
    "SweepExecutor",
    "SerialExecutor",
    "ProcessPoolSweepExecutor",
    "SweepExecutionError",
    "executor_by_name",
    "EXECUTOR_CHOICES",
    "facs_factory",
    "scc_factory",
    "FACSControllerFactory",
    "SCCControllerFactory",
    "PAPER_SPEED_VALUES_KMH",
    "PAPER_ANGLE_VALUES_DEG",
    "PAPER_DISTANCE_VALUES_KM",
    "speed_sweep_variants",
    "angle_sweep_variants",
    "distance_sweep_variants",
    "controller_comparison_variants",
    "baseline_comparison_variants",
]
