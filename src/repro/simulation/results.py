"""Result records and aggregation across replications.

The dataclasses here are the stable row-level vocabulary of the result
path; since the columnar refactor they double as *views* over
:class:`repro.analysis.frame.MetricsFrame` rows
(:meth:`MetricsFrame.run_result`, :meth:`FrameGroup.to_aggregated_result`).
The ``aggregate_runs``/``aggregate_network_runs`` loops below remain the
executable specification of the replication statistics — the frame's
``group_reduce`` shares their exact arithmetic through
:func:`repro.analysis.stats.series_mean`/``series_sample_std`` and is
property-tested bit-identical against them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Sequence

from ..analysis.stats import series_mean, series_sample_std
from ..cellular.metrics import CallMetrics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports us)
    from .engine import NetworkRunOutput

__all__ = [
    "RunResult",
    "AggregatedResult",
    "aggregate_runs",
    "NetworkAggregatedResult",
    "aggregate_network_runs",
]


@dataclass(frozen=True)
class RunResult:
    """Outcome of one simulation run with one controller."""

    controller: str
    metrics: CallMetrics
    parameters: Mapping[str, float] = field(default_factory=dict)
    seed: int = 0

    @property
    def acceptance_percentage(self) -> float:
        return self.metrics.acceptance_percentage

    @property
    def blocking_probability(self) -> float:
        return self.metrics.blocking_probability

    @property
    def dropping_probability(self) -> float:
        return self.metrics.dropping_probability


@dataclass(frozen=True)
class AggregatedResult:
    """Mean and spread of a metric over replications of the same scenario."""

    controller: str
    parameters: Mapping[str, float]
    replications: int
    mean_acceptance_percentage: float
    std_acceptance_percentage: float
    mean_blocking_probability: float
    mean_dropping_probability: float

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Approximate CI of the mean acceptance percentage (normal theory)."""
        if self.replications <= 1:
            return (self.mean_acceptance_percentage, self.mean_acceptance_percentage)
        half_width = z * self.std_acceptance_percentage / math.sqrt(self.replications)
        return (
            self.mean_acceptance_percentage - half_width,
            self.mean_acceptance_percentage + half_width,
        )


def aggregate_runs(runs: Sequence[RunResult]) -> AggregatedResult:
    """Aggregate replications of the same (controller, parameters) scenario."""
    if not runs:
        raise ValueError("cannot aggregate an empty list of runs")
    controllers = {run.controller for run in runs}
    if len(controllers) != 1:
        raise ValueError(f"runs mix controllers: {sorted(controllers)}")
    acceptance = [run.acceptance_percentage for run in runs]
    blocking = [run.blocking_probability for run in runs]
    dropping = [run.dropping_probability for run in runs]
    mean_acc = series_mean(acceptance)
    return AggregatedResult(
        controller=runs[0].controller,
        parameters=dict(runs[0].parameters),
        replications=len(runs),
        mean_acceptance_percentage=mean_acc,
        std_acceptance_percentage=series_sample_std(acceptance, mean_acc),
        mean_blocking_probability=series_mean(blocking),
        mean_dropping_probability=series_mean(dropping),
    )


@dataclass(frozen=True)
class NetworkAggregatedResult:
    """Mean QoS metrics of a multi-cell scenario over its replications.

    The network experiment measures more than acceptance: handoff attempts
    and failures, dropped ongoing calls and the time-average occupancy all
    enter the paper's QoS comparison, so they are aggregated alongside the
    blocking/acceptance means of :class:`AggregatedResult`.
    """

    controller: str
    parameters: Mapping[str, float]
    replications: int
    mean_acceptance_percentage: float
    std_acceptance_percentage: float
    mean_blocking_probability: float
    mean_dropping_probability: float
    mean_handoff_failure_ratio: float
    mean_handoff_attempts: float
    mean_occupancy_bu: float


def aggregate_network_runs(
    outputs: Sequence["NetworkRunOutput"],
) -> NetworkAggregatedResult:
    """Aggregate replications of the same multi-cell scenario."""
    if not outputs:
        raise ValueError("cannot aggregate an empty list of network runs")
    runs = [output.result for output in outputs]
    controllers = {run.controller for run in runs}
    if len(controllers) != 1:
        raise ValueError(f"runs mix controllers: {sorted(controllers)}")
    acceptance = [run.acceptance_percentage for run in runs]
    mean_acc = series_mean(acceptance)
    return NetworkAggregatedResult(
        controller=runs[0].controller,
        parameters=dict(runs[0].parameters),
        replications=len(outputs),
        mean_acceptance_percentage=mean_acc,
        std_acceptance_percentage=series_sample_std(acceptance, mean_acc),
        mean_blocking_probability=series_mean([r.blocking_probability for r in runs]),
        mean_dropping_probability=series_mean([r.dropping_probability for r in runs]),
        mean_handoff_failure_ratio=series_mean(
            [o.handoff_failure_ratio for o in outputs]
        ),
        mean_handoff_attempts=series_mean([o.handoff_attempts for o in outputs]),
        mean_occupancy_bu=series_mean([o.time_average_occupancy_bu for o in outputs]),
    )
