"""Offline, trace-driven admission through the batched FACS fast path.

The batch experiment (:mod:`repro.simulation.batch`) decides every request
one at a time inside the discrete-event loop.  This module is the
*pipeline* counterpart for offline workloads: the whole arrival trace is
materialized first (:func:`repro.simulation.batch.build_requests` — a pure
function of the seeded config), then streamed through
:meth:`~repro.cac.facs.system.FuzzyAdmissionControlSystem.decide_batch` in
fixed-size batches, so the cascaded FLC1 → FLC2 inference runs once per
batch over the whole candidate vector instead of once per call.

Semantics are batch-synchronous, and deliberately so: all candidates of a
batch are scored against the station snapshot at the batch's first arrival
(departures due by then are released first), then admitted greedily in
arrival order while bandwidth lasts.  That is the standard trade of an
async arrival pipeline — admission decisions lag individual arrivals by at
most one batch — and ``batch_size=1`` recovers per-call granularity.

Everything is deterministic: the trace derives from the seed alone, ties
in the departure queue break on the per-run sequential call id, and no
state outlives the run — so results are identical in any process, thread
or execution order.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from ..analysis import stats
from ..cac.facs.system import FACSConfig, FuzzyAdmissionControlSystem
from ..cellular.calls import Call
from ..cellular.cell import BaseStation
from ..cellular.metrics import CallMetrics
from ..des.rng import StreamFactory
from .batch import TraceArrays, build_trace_arrays
from .config import BatchExperimentConfig
from .results import RunResult

__all__ = ["TraceBatchRecord", "TraceRunResult", "run_trace_arrivals"]


@dataclass(frozen=True)
class TraceBatchRecord:
    """Outcome of one admission batch of the trace pipeline."""

    index: int
    start_time_s: float
    size: int
    accepted: int
    occupancy_before_bu: int
    occupancy_after_bu: int


@dataclass(frozen=True)
class TraceRunResult:
    """Aggregate outcome of one trace-driven run."""

    controller: str
    requested: int
    accepted: int
    batch_size: int
    peak_occupancy_bu: int
    batches: tuple[TraceBatchRecord, ...]
    metrics: CallMetrics | None = None

    @property
    def acceptance_percentage(self) -> float:
        """The paper's headline metric through its single arithmetic spec,
        :func:`repro.analysis.stats.acceptance_percentage` (which
        :attr:`CallMetrics.acceptance_percentage` also delegates to)."""
        if self.metrics is not None:
            return self.metrics.acceptance_percentage
        return stats.acceptance_percentage(self.accepted, self.requested)

    def to_run_result(self, seed: int = 0) -> RunResult:
        """The trace run as a counter row for the columnar result store.

        Every admitted call's departure is replayed before the run
        returns, so ``completed`` equals ``accepted`` — the same totals
        the discrete-event batch experiment reports for this trace.
        """
        if self.metrics is None:
            raise ValueError(
                "this TraceRunResult carries no counter metrics; "
                "run_trace_arrivals populates them"
            )
        return RunResult(
            controller=self.controller,
            metrics=self.metrics,
            parameters={
                "request_count": float(self.requested),
                "batch_size": float(self.batch_size),
            },
            seed=seed,
        )


def run_trace_arrivals(
    config: BatchExperimentConfig,
    batch_size: int = 16,
    facs_config: FACSConfig | None = None,
    stream: bool = False,
) -> TraceRunResult:
    """Replay the trace described by ``config`` through ``decide_batch``.

    ``batch_size`` sets the admission granularity (1 = per-call);
    ``facs_config`` selects the FACS tuning and inference engine.  The
    controller is FACS by construction — it is the only controller with a
    vectorized batch admission path.

    ``stream=True`` selects the frame-native fast path: the trace stays
    columnar (:class:`~repro.simulation.batch.TraceArrays` — no per-request
    ``Call`` objects), each batch is scored in one FLC1 → FLC2 pass over the
    columns, and occupancy/departures are tracked with sorted numpy arrays.
    Both paths replay the same draws and the same batch-synchronous
    semantics, so their results — counters, per-batch records, peak
    occupancy — are byte-identical; the object path is the equivalence
    oracle the tests and the scale benchmark hold the fast path to.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    streams = StreamFactory(master_seed=config.stream_master_seed)
    arrays = build_trace_arrays(config, streams)
    controller = FuzzyAdmissionControlSystem(facs_config or FACSConfig())
    controller.reset()

    if stream:
        return _run_trace_columns(config, arrays, controller, batch_size)

    requests = arrays.to_calls()
    station = BaseStation(capacity_bu=config.capacity_bu)

    # Departure queue of admitted calls: (departure time, call id, call).
    # The call id breaks time ties deterministically.
    departures: list[tuple[float, int, Call]] = []
    records: list[TraceBatchRecord] = []
    accepted_total = 0
    peak_occupancy = 0
    completed = 0
    accepted_bu = 0
    requested_bu = arrays.requested_bu

    def release_next_departure() -> None:
        nonlocal completed
        departure_time, _, departed = heapq.heappop(departures)
        station.release(departed)
        departed.complete(departure_time)
        controller.on_released(departed, station, departure_time)
        completed += 1

    for index in range(0, len(requests), batch_size):
        batch = requests[index : index + batch_size]
        now = batch[0].requested_at
        while departures and departures[0][0] <= now:
            release_next_departure()

        occupancy_before = station.used_bu
        decision = controller.decide_batch(batch, station, now)
        accepted_in_batch = 0
        for call, scored_ok in zip(batch, decision.accepted):
            accepted = bool(scored_ok) and station.can_fit(call.bandwidth_units)
            if accepted:
                station.allocate(call)
                call.admit(now, station.station_id)
                controller.on_admitted(call, station, now)
                heapq.heappush(
                    departures,
                    (call.requested_at + call.holding_time_s, call.call_id, call),
                )
                accepted_in_batch += 1
                accepted_bu += call.bandwidth_units
                peak_occupancy = max(peak_occupancy, station.used_bu)
            else:
                call.block(now, station.station_id)
        accepted_total += accepted_in_batch
        records.append(
            TraceBatchRecord(
                index=index // batch_size,
                start_time_s=now,
                size=len(batch),
                accepted=accepted_in_batch,
                occupancy_before_bu=occupancy_before,
                occupancy_after_bu=station.used_bu,
            )
        )

    # Drain the departure queue after the final batch: every admitted call
    # eventually completes, so the completion counters are a property of
    # the trace — not of where its batch boundaries happened to fall.
    while departures:
        release_next_departure()

    return TraceRunResult(
        controller=controller.name,
        requested=len(requests),
        accepted=accepted_total,
        batch_size=batch_size,
        peak_occupancy_bu=peak_occupancy,
        batches=tuple(records),
        metrics=CallMetrics(
            requested=len(requests),
            accepted=accepted_total,
            blocked=len(requests) - accepted_total,
            completed=completed,
            dropped=0,
            handoff_requests=0,
            handoff_accepted=0,
            accepted_bu=accepted_bu,
            requested_bu=requested_bu,
        ),
    )


def _run_trace_columns(
    config: BatchExperimentConfig,
    arrays: TraceArrays,
    controller: FuzzyAdmissionControlSystem,
    batch_size: int,
) -> TraceRunResult:
    """The vectorized trace hot loop: whole batches over numpy columns.

    Equivalent to the object path batch for batch.  Scoring goes through
    :meth:`~repro.cac.facs.system.FuzzyAdmissionControlSystem.decide_columns`,
    which screens most rows with certified interval bounds and evaluates
    exactly only the remainder — decisions stay byte-identical to the
    oracle's ``scores > threshold`` comparison.  Within a batch,
    bandwidth only shrinks, so a candidate whose demand exceeds the current
    free bandwidth is rejected *permanently* — which is what lets the
    greedy arrival-order admission run as a mask + prefix-sum loop whose
    iteration count is bounded by the number of admissions, not the batch
    size.  Pending departures are two sorted arrays (time, bandwidth); a
    ``searchsorted`` prefix pop replaces the heap (release *order* within a
    batch is unobservable — releases only sum into occupancy and the
    completion counter — so the heap's call-id tie-break is not needed).

    The controller's RTC/NRTC service counters are not maintained here:
    they never feed back into ``decide_batch`` scores, so skipping the
    per-call ``on_admitted``/``on_released`` bookkeeping changes no
    observable output.
    """
    capacity = config.capacity_bu
    arrivals = arrays.arrival_time_s
    bandwidth = arrays.bandwidth_units
    bandwidth_f = bandwidth.astype(np.float64)
    departure_due = arrivals + arrays.holding_time_s
    speeds = arrays.speed_kmh
    angles = arrays.angle_deg
    distances = arrays.distance_km

    pending_times = np.empty(0, dtype=np.float64)
    pending_bws = np.empty(0, dtype=np.int64)
    records: list[TraceBatchRecord] = []
    used = 0
    accepted_total = 0
    completed = 0
    accepted_bu = 0
    peak_occupancy = 0

    total = len(arrays)
    for start in range(0, total, batch_size):
        stop = min(start + batch_size, total)
        now = float(arrivals[start])

        # Release every departure due by the batch start.
        due = int(np.searchsorted(pending_times, now, side="right"))
        if due:
            used -= int(pending_bws[:due].sum())
            completed += due
            pending_times = pending_times[due:]
            pending_bws = pending_bws[due:]

        occupancy_before = used
        scored_ok = controller.decide_columns(
            speeds[start:stop],
            angles[start:stop],
            distances[start:stop],
            bandwidth_f[start:stop],
            used,
        )

        # Greedy admission in arrival order while bandwidth lasts.
        candidates = start + np.flatnonzero(scored_ok)
        candidate_bws = bandwidth[candidates]
        free = capacity - used
        admitted_runs: list[np.ndarray] = []
        while candidates.size:
            feasible = candidate_bws <= free
            if not feasible.any():
                break
            candidates = candidates[feasible]
            candidate_bws = candidate_bws[feasible]
            cumulative = np.cumsum(candidate_bws)
            take = int(np.searchsorted(cumulative, free, side="right"))
            admitted_runs.append(candidates[:take])
            free -= int(cumulative[take - 1])
            candidates = candidates[take:]
            candidate_bws = candidate_bws[take:]

        accepted_in_batch = 0
        if admitted_runs:
            admitted = np.concatenate(admitted_runs)
            admitted_bws = bandwidth[admitted]
            admitted_bu = int(admitted_bws.sum())
            accepted_in_batch = int(admitted.size)
            used += admitted_bu
            accepted_total += accepted_in_batch
            accepted_bu += admitted_bu
            peak_occupancy = max(peak_occupancy, used)
            pending_times = np.concatenate((pending_times, departure_due[admitted]))
            pending_bws = np.concatenate((pending_bws, admitted_bws))
            order = np.argsort(pending_times, kind="stable")
            pending_times = pending_times[order]
            pending_bws = pending_bws[order]

        records.append(
            TraceBatchRecord(
                index=start // batch_size,
                start_time_s=now,
                size=stop - start,
                accepted=accepted_in_batch,
                occupancy_before_bu=occupancy_before,
                occupancy_after_bu=used,
            )
        )

    # Final drain, mirroring the object path: every admitted call completes.
    completed += int(pending_times.size)

    return TraceRunResult(
        controller=controller.name,
        requested=total,
        accepted=accepted_total,
        batch_size=batch_size,
        peak_occupancy_bu=peak_occupancy,
        batches=tuple(records),
        metrics=CallMetrics(
            requested=total,
            accepted=accepted_total,
            blocked=total - accepted_total,
            completed=completed,
            dropped=0,
            handoff_requests=0,
            handoff_accepted=0,
            accepted_bu=accepted_bu,
            requested_bu=arrays.requested_bu,
        ),
    )
