"""Pluggable executors fanning independent sweep replications across cores.

Every figure of the paper is an acceptance-vs-requests sweep whose hundreds
of replications are mutually independent: each one derives its own random
streams from ``(seed, replication)`` and shares no state with its siblings.
That makes the sweep an embarrassingly parallel collective, and the executor
abstraction here lets :func:`repro.simulation.sweep.run_acceptance_sweep`
fan the replications out without caring how they are scheduled:

* :class:`SerialExecutor` runs tasks in order in the calling process (the
  reference backend, and the default);
* :class:`ProcessPoolSweepExecutor` distributes tasks over a
  ``concurrent.futures.ProcessPoolExecutor``;
* :class:`ThreadPoolSweepExecutor` distributes tasks over a thread pool —
  no pickling and no worker start-up cost, worthwhile now that the compiled
  inference hot path spends its time in NumPy.

All backends preserve task order in their results, and because every task
carries its full seeded configuration, the assembled sweep is *identical*
regardless of backend, worker count or scheduling order — a property locked
down by ``tests/simulation/test_parallel_executor.py`` and
``tests/simulation/test_network_sweep.py``.

Parallel tasks must be picklable; the controller factories in
:mod:`repro.simulation.scenario` are dataclass callables for exactly this
reason.  Passing a lambda/closure factory raises :class:`SweepExecutionError`
with a pointer to the picklable alternatives.
"""

from __future__ import annotations

import os
import pickle
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Sequence, TypeVar

from ..registry import Registry, RegistryError

__all__ = [
    "SweepExecutor",
    "SerialExecutor",
    "ProcessPoolSweepExecutor",
    "ThreadPoolSweepExecutor",
    "SweepExecutionError",
    "executor_by_name",
    "EXECUTORS",
    "EXECUTOR_CHOICES",
]

T = TypeVar("T")
R = TypeVar("R")

#: Registry of executor backends: name → builder ``(workers) -> SweepExecutor``.
#: Registration order defines the CLI ``--executor`` choices; aliases
#: ("parallel", "threads") resolve but stay out of the choices list.
EXECUTORS: Registry[Callable[[int | None], "SweepExecutor"]] = Registry("executor")


class SweepExecutionError(RuntimeError):
    """Raised when a sweep cannot be executed on the selected backend."""


class SweepExecutor(ABC):
    """Strategy object mapping a function over independent sweep tasks."""

    name: str = "executor"

    @abstractmethod
    def map(self, fn: Callable[[T], R], tasks: Sequence[T]) -> list[R]:
        """Apply ``fn`` to every task, returning results in task order."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class SerialExecutor(SweepExecutor):
    """Run every task in order in the calling process."""

    name = "serial"

    def map(self, fn: Callable[[T], R], tasks: Sequence[T]) -> list[R]:
        return [fn(task) for task in tasks]


class ProcessPoolSweepExecutor(SweepExecutor):
    """Fan tasks out over a pool of worker processes.

    Parameters
    ----------
    max_workers:
        Number of worker processes; ``None`` uses ``os.cpu_count()``.  The
        pool never starts more workers than there are tasks.
    """

    name = "process"

    def __init__(self, max_workers: int | None = None):
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be at least 1, got {max_workers}")
        self.max_workers = max_workers

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProcessPoolSweepExecutor(max_workers={self.max_workers})"

    _PICKLE_HINT = (
        "parallel sweep execution requires picklable tasks; controller "
        "factories must be module-level callables — use the factories in "
        "repro.simulation.scenario (e.g. facs_factory()) instead of "
        "lambdas or closures"
    )

    def map(self, fn: Callable[[T], R], tasks: Sequence[T]) -> list[R]:
        tasks = list(tasks)
        if not tasks:
            return []
        # Cheap pre-flight on one representative task; heterogeneous task
        # lists are still covered by the translation around the pool below.
        try:
            pickle.dumps((fn, tasks[0]))
        except Exception as exc:
            raise SweepExecutionError(f"{self._PICKLE_HINT} ({exc})") from exc
        workers = self.max_workers or os.cpu_count() or 1
        workers = min(workers, len(tasks))
        # A few chunks per worker amortises pickling without starving the
        # pool when task durations vary (heavier request counts take longer).
        chunksize = max(1, len(tasks) // (4 * workers))
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(fn, tasks, chunksize=chunksize))
        except pickle.PicklingError as exc:
            raise SweepExecutionError(f"{self._PICKLE_HINT} ({exc})") from exc


class ThreadPoolSweepExecutor(SweepExecutor):
    """Fan tasks out over a pool of threads in the calling process.

    The discrete-event loops are pure Python and serialise on the GIL, but
    the compiled inference engines spend their time inside NumPy kernels
    that release it, so threads overlap usefully on the now NumPy-bound hot
    path — with none of the pickling constraints or worker start-up cost of
    the process pool.  Tasks must therefore be thread-safe: the engines
    keep their scratch state in thread-local storage, and every replication
    builds its own controllers, streams and DES environment.

    Parameters
    ----------
    max_workers:
        Number of worker threads; ``None`` uses ``os.cpu_count()``.  The
        pool never starts more threads than there are tasks.
    """

    name = "thread"

    def __init__(self, max_workers: int | None = None):
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be at least 1, got {max_workers}")
        self.max_workers = max_workers

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ThreadPoolSweepExecutor(max_workers={self.max_workers})"

    def map(self, fn: Callable[[T], R], tasks: Sequence[T]) -> list[R]:
        tasks = list(tasks)
        if not tasks:
            return []
        workers = self.max_workers or os.cpu_count() or 1
        workers = min(workers, len(tasks))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, tasks))


@EXECUTORS.register("serial")
def _build_serial(workers: int | None = None) -> SweepExecutor:
    return SerialExecutor()


@EXECUTORS.register("process", aliases=("parallel",))
def _build_process(workers: int | None = None) -> SweepExecutor:
    return ProcessPoolSweepExecutor(max_workers=workers)


@EXECUTORS.register("thread", aliases=("threads",))
def _build_thread(workers: int | None = None) -> SweepExecutor:
    return ThreadPoolSweepExecutor(max_workers=workers)


#: Import-time snapshot of the registered executor names, kept as a tuple
#: for backwards compatibility.  Live consumers (the CLI ``--executor``
#: choices, error messages) should read ``EXECUTORS.names()`` instead so
#: executors registered later are picked up.
EXECUTOR_CHOICES = EXECUTORS.names()


def executor_by_name(name: str, workers: int | None = None) -> SweepExecutor:
    """Build an executor from its registered name.

    ``"serial"`` ignores ``workers``; ``"process"`` (alias ``"parallel"``)
    and ``"thread"`` (alias ``"threads"``) forward it as the pool size.
    """
    key = name.strip().lower()
    try:
        builder = EXECUTORS.get(key)
    except RegistryError:
        raise ValueError(
            f"unknown executor {name!r}; available: {sorted(EXECUTORS.names())}"
        ) from None
    return builder(workers)
