"""Pluggable executors fanning independent sweep replications across cores.

Every figure of the paper is an acceptance-vs-requests sweep whose hundreds
of replications are mutually independent: each one derives its own random
streams from ``(seed, replication)`` and shares no state with its siblings.
That makes the sweep an embarrassingly parallel collective, and the executor
abstraction here lets :func:`repro.simulation.sweep.run_acceptance_sweep`
fan the replications out without caring how they are scheduled:

* :class:`SerialExecutor` runs tasks in order in the calling process (the
  reference backend, and the default);
* :class:`ProcessPoolSweepExecutor` distributes tasks over a
  ``concurrent.futures.ProcessPoolExecutor``;
* :class:`ThreadPoolSweepExecutor` distributes tasks over a thread pool —
  no pickling and no worker start-up cost, worthwhile now that the compiled
  inference hot path spends its time in NumPy.

All backends preserve task order in their results, and because every task
carries its full seeded configuration, the assembled sweep is *identical*
regardless of backend, worker count or scheduling order — a property locked
down by ``tests/simulation/test_parallel_executor.py`` and
``tests/simulation/test_network_sweep.py``.

Parallel tasks must be picklable; the controller factories in
:mod:`repro.simulation.scenario` are dataclass callables for exactly this
reason.  Passing a lambda/closure factory raises :class:`SweepExecutionError`
with a pointer to the picklable alternatives.
"""

from __future__ import annotations

import os
import pickle
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Iterable, Sequence, TypeVar

from ..registry import Registry, RegistryError

__all__ = [
    "SweepExecutor",
    "SerialExecutor",
    "ProcessPoolSweepExecutor",
    "ThreadPoolSweepExecutor",
    "SweepExecutionError",
    "TaskReducer",
    "default_chunksize",
    "executor_by_name",
    "EXECUTORS",
    "EXECUTOR_CHOICES",
]

T = TypeVar("T")
R = TypeVar("R")


def default_chunksize(task_count: int, workers: int) -> int:
    """A few chunks per worker: amortise the per-task submit/pickle cost.

    Thousand-task sharded sweeps used to pay one pool submission (and, on
    the process backend, one pickle round) per task; batching ~4 chunks
    per worker removes that overhead without starving the pool when task
    durations vary (heavier request counts take longer).

    Always returns a valid chunksize (>= 1): degenerate plans — an empty
    task list, or more workers than tasks — collapse to chunks of one.
    """
    if task_count < 0:
        raise ValueError(f"task_count must be >= 0, got {task_count}")
    return max(1, task_count // (4 * max(workers, 1)))


def _chunked(tasks: Sequence[T], chunksize: int) -> list[Sequence[T]]:
    """Split ``tasks`` into contiguous, order-preserving chunks.

    Concatenating the chunks in order reproduces ``tasks`` exactly: every
    task appears once, in its original position.
    """
    if chunksize < 1:
        raise ValueError(f"chunksize must be >= 1, got {chunksize}")
    return [tasks[i : i + chunksize] for i in range(0, len(tasks), chunksize)]


class TaskReducer(ABC):
    """Protocol for :meth:`SweepExecutor.map_reduce` reductions.

    ``fold`` turns one chunk's per-task results into a compact partial
    (it runs *inside the worker* on the process backend, so the heavyweight
    per-task results never cross the process boundary); ``pack``/``unpack``
    translate a partial to/from a small picklable descriptor for the IPC
    hop (identity by default); ``merge`` combines the partials in task
    order in the parent.  ``merge`` over any chunking must equal one
    ``fold`` over all results — that associativity is what keeps reduced
    results byte-identical for every backend and worker count.

    Executors call these four methods structurally; implementations do not
    have to subclass (see :class:`repro.analysis.frame.FrameReducer`).

    **Incremental fold.**  A reducer that sets ``incremental = True`` also
    provides ``begin()`` / ``absorb(state, partial)`` / ``finalize(state)``.
    Executors then fold each chunk partial into the running ``state`` the
    moment it is available — always in *task-submission order*, regardless
    of which worker finishes first — instead of buffering every partial for
    one final ``merge``.  Because the absorption order is canonical, the
    finalized result is byte-identical across serial/thread/process
    backends at any worker count, and parent memory is bounded by the
    accumulator (constant for a spilling accumulator like
    :class:`repro.analysis.frame.FrameAccumulator`) rather than by the
    total number of tasks.
    """

    #: Set to True (with begin/absorb/finalize) to opt into incremental fold.
    incremental: bool = False

    @abstractmethod
    def fold(self, results: Iterable[R]) -> Any:
        """Combine one chunk of per-task results into a partial."""

    def pack(self, partial: Any) -> Any:
        """Worker-side: encode a partial for the trip to the parent."""
        return partial

    def unpack(self, packed: Any) -> Any:
        """Parent-side: decode a worker's packed partial."""
        return packed

    @abstractmethod
    def merge(self, partials: Sequence[Any]) -> Any:
        """Combine the chunk partials, in task order, into the final result."""

    def begin(self) -> Any:
        """Fresh incremental-fold state (incremental reducers only)."""
        raise NotImplementedError(f"{type(self).__name__} is not incremental")

    def absorb(self, state: Any, partial: Any) -> None:
        """Fold one chunk partial into ``state``, in task-submission order."""
        raise NotImplementedError(f"{type(self).__name__} is not incremental")

    def finalize(self, state: Any) -> Any:
        """Close out the incremental fold and return the reduced result."""
        raise NotImplementedError(f"{type(self).__name__} is not incremental")


def _map_reduce_chunk(fn, reducer, chunk):
    """Fold one chunk in a worker; module-level so process pools can pickle it."""
    return reducer.pack(reducer.fold([fn(task) for task in chunk]))

#: Registry of executor backends: name → builder ``(workers) -> SweepExecutor``.
#: Registration order defines the CLI ``--executor`` choices; aliases
#: ("parallel", "threads") resolve but stay out of the choices list.
EXECUTORS: Registry[Callable[[int | None], "SweepExecutor"]] = Registry("executor")


class SweepExecutionError(RuntimeError):
    """Raised when a sweep cannot be executed on the selected backend."""


class SweepExecutor(ABC):
    """Strategy object mapping a function over independent sweep tasks."""

    name: str = "executor"

    @abstractmethod
    def map(self, fn: Callable[[T], R], tasks: Sequence[T]) -> list[R]:
        """Apply ``fn`` to every task, returning results in task order."""

    def map_reduce(
        self, fn: Callable[[T], R], tasks: Sequence[T], reducer: TaskReducer
    ) -> Any:
        """Apply ``fn`` to every task and reduce the results via ``reducer``.

        The default (serial) implementation folds everything in one
        in-process pass; the pool backends override it to fold per chunk —
        inside the worker on the process pool, so only the packed partials
        travel back to the parent.  Because ``reducer.merge`` over any
        chunking equals one fold over all results, the reduced value is
        identical for every backend and worker count.
        """
        if getattr(reducer, "incremental", False):
            state = reducer.begin()
            reducer.absorb(state, reducer.fold(fn(task) for task in tasks))
            return reducer.finalize(state)
        return reducer.merge([reducer.fold(fn(task) for task in tasks)])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class SerialExecutor(SweepExecutor):
    """Run every task in order in the calling process."""

    name = "serial"

    def map(self, fn: Callable[[T], R], tasks: Sequence[T]) -> list[R]:
        return [fn(task) for task in tasks]


class ProcessPoolSweepExecutor(SweepExecutor):
    """Fan tasks out over a pool of worker processes.

    Parameters
    ----------
    max_workers:
        Number of worker processes; ``None`` uses ``os.cpu_count()``.  The
        pool never starts more workers than there are tasks.
    """

    name = "process"

    def __init__(self, max_workers: int | None = None, chunksize: int | None = None):
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be at least 1, got {max_workers}")
        if chunksize is not None and chunksize < 1:
            raise ValueError(f"chunksize must be at least 1, got {chunksize}")
        self.max_workers = max_workers
        self.chunksize = chunksize

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProcessPoolSweepExecutor(max_workers={self.max_workers})"

    _PICKLE_HINT = (
        "parallel sweep execution requires picklable tasks; controller "
        "factories must be module-level callables — use the factories in "
        "repro.simulation.scenario (e.g. facs_factory()) instead of "
        "lambdas or closures"
    )

    def _workers_for(self, task_count: int) -> int:
        workers = self.max_workers or os.cpu_count() or 1
        return min(workers, task_count)

    def _preflight(self, *payload) -> None:
        # Cheap pre-flight on one representative task; heterogeneous task
        # lists are still covered by the translation around the pool below.
        try:
            pickle.dumps(payload)
        except Exception as exc:
            raise SweepExecutionError(f"{self._PICKLE_HINT} ({exc})") from exc

    def map(self, fn: Callable[[T], R], tasks: Sequence[T]) -> list[R]:
        tasks = list(tasks)
        if not tasks:
            return []
        self._preflight(fn, tasks[0])
        workers = self._workers_for(len(tasks))
        chunksize = self.chunksize or default_chunksize(len(tasks), workers)
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(fn, tasks, chunksize=chunksize))
        except pickle.PicklingError as exc:
            raise SweepExecutionError(f"{self._PICKLE_HINT} ({exc})") from exc

    def map_reduce(
        self, fn: Callable[[T], R], tasks: Sequence[T], reducer: TaskReducer
    ) -> Any:
        """Fold chunks inside the workers; only packed partials come back.

        This is the shared-memory aggregation seam: with a reducer like
        :class:`repro.analysis.frame.FrameReducer`, each worker folds its
        chunk of counter rows into a columnar frame and ships raw column
        buffers through shared memory — the per-task result objects are
        never pickled back to the parent.
        """
        tasks = list(tasks)
        if not tasks:
            if getattr(reducer, "incremental", False):
                state = reducer.begin()
                reducer.absorb(state, reducer.fold([]))
                return reducer.finalize(state)
            return reducer.merge([reducer.fold([])])
        self._preflight(fn, reducer, tasks[0])
        workers = self._workers_for(len(tasks))
        chunks = _chunked(
            tasks, self.chunksize or default_chunksize(len(tasks), workers)
        )
        # Per-chunk futures (not pool.map): on a task failure every chunk
        # that *did* complete must still be unpacked, or its packed partial
        # — a shared-memory segment whose ownership the worker already
        # handed to this parent — would outlive the process in /dev/shm.
        incremental = getattr(reducer, "incremental", False)
        state = reducer.begin() if incremental else None
        packed: list = []
        first_error: BaseException | None = None
        with ProcessPoolExecutor(max_workers=min(workers, len(chunks))) as pool:
            futures = [
                pool.submit(_map_reduce_chunk, fn, reducer, chunk)
                for chunk in chunks
            ]
            # Iterating the futures in submission order canonicalises the
            # fold order: chunks are unpacked (and, incrementally, absorbed)
            # in task order no matter which worker finishes first.
            for future in futures:
                try:
                    result = future.result()
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    if first_error is None:
                        first_error = exc
                    continue
                if first_error is not None or not incremental:
                    packed.append(result)
                else:
                    reducer.absorb(state, reducer.unpack(result))
        if first_error is not None:
            for partial in packed:
                try:
                    reducer.unpack(partial)  # releases the shm segment
                except Exception:  # pragma: no cover - best-effort cleanup
                    pass
            if isinstance(first_error, pickle.PicklingError):
                raise SweepExecutionError(
                    f"{self._PICKLE_HINT} ({first_error})"
                ) from first_error
            raise first_error
        if incremental:
            return reducer.finalize(state)
        return reducer.merge([reducer.unpack(p) for p in packed])


class ThreadPoolSweepExecutor(SweepExecutor):
    """Fan tasks out over a pool of threads in the calling process.

    The discrete-event loops are pure Python and serialise on the GIL, but
    the compiled inference engines spend their time inside NumPy kernels
    that release it, so threads overlap usefully on the now NumPy-bound hot
    path — with none of the pickling constraints or worker start-up cost of
    the process pool.  Tasks must therefore be thread-safe: the engines
    keep their scratch state in thread-local storage, and every replication
    builds its own controllers, streams and DES environment.

    Parameters
    ----------
    max_workers:
        Number of worker threads; ``None`` uses ``os.cpu_count()``.  The
        pool never starts more threads than there are tasks.
    """

    name = "thread"

    def __init__(self, max_workers: int | None = None, chunksize: int | None = None):
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be at least 1, got {max_workers}")
        if chunksize is not None and chunksize < 1:
            raise ValueError(f"chunksize must be at least 1, got {chunksize}")
        self.max_workers = max_workers
        self.chunksize = chunksize

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ThreadPoolSweepExecutor(max_workers={self.max_workers})"

    def _plan(self, tasks: Sequence[T]) -> tuple[int, list[Sequence[T]]]:
        workers = self.max_workers or os.cpu_count() or 1
        workers = min(workers, len(tasks))
        chunksize = self.chunksize or default_chunksize(len(tasks), workers)
        return workers, _chunked(tasks, chunksize)

    def map(self, fn: Callable[[T], R], tasks: Sequence[T]) -> list[R]:
        tasks = list(tasks)
        if not tasks:
            return []
        workers, chunks = self._plan(tasks)
        # ThreadPoolExecutor.map ignores chunksize, so chunk explicitly:
        # one submission per chunk instead of one per task.
        with ThreadPoolExecutor(max_workers=min(workers, len(chunks))) as pool:
            chunked = list(pool.map(lambda chunk: [fn(t) for t in chunk], chunks))
        return [result for chunk in chunked for result in chunk]

    def map_reduce(
        self, fn: Callable[[T], R], tasks: Sequence[T], reducer: TaskReducer
    ) -> Any:
        """Fold per chunk in the pool; no pack/unpack hop (same process)."""
        tasks = list(tasks)
        if not tasks:
            if getattr(reducer, "incremental", False):
                state = reducer.begin()
                reducer.absorb(state, reducer.fold([]))
                return reducer.finalize(state)
            return reducer.merge([reducer.fold([])])
        workers, chunks = self._plan(tasks)
        with ThreadPoolExecutor(max_workers=min(workers, len(chunks))) as pool:
            stream = pool.map(lambda chunk: reducer.fold([fn(t) for t in chunk]), chunks)
            if getattr(reducer, "incremental", False):
                # pool.map yields in submission order, so chunk partials are
                # absorbed in canonical task order as they become available.
                state = reducer.begin()
                for partial in stream:
                    reducer.absorb(state, partial)
                return reducer.finalize(state)
            partials = list(stream)
        return reducer.merge(partials)


@EXECUTORS.register("serial")
def _build_serial(workers: int | None = None) -> SweepExecutor:
    return SerialExecutor()


@EXECUTORS.register("process", aliases=("parallel",))
def _build_process(workers: int | None = None) -> SweepExecutor:
    return ProcessPoolSweepExecutor(max_workers=workers)


@EXECUTORS.register("thread", aliases=("threads",))
def _build_thread(workers: int | None = None) -> SweepExecutor:
    return ThreadPoolSweepExecutor(max_workers=workers)


#: Import-time snapshot of the registered executor names, kept as a tuple
#: for backwards compatibility.  Live consumers (the CLI ``--executor``
#: choices, error messages) should read ``EXECUTORS.names()`` instead so
#: executors registered later are picked up.
EXECUTOR_CHOICES = EXECUTORS.names()


def executor_by_name(name: str, workers: int | None = None) -> SweepExecutor:
    """Build an executor from its registered name.

    ``"serial"`` ignores ``workers``; ``"process"`` (alias ``"parallel"``)
    and ``"thread"`` (alias ``"threads"``) forward it as the pool size.
    """
    key = name.strip().lower()
    try:
        builder = EXECUTORS.get(key)
    except RegistryError:
        raise ValueError(
            f"unknown executor {name!r}; available: {sorted(EXECUTORS.names())}"
        ) from None
    return builder(workers)
