"""Simulation configurations with the paper's defaults (Section 4)."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from ..cellular.mobility import UserProfile
from ..cellular.network import hex_cell_count
from ..cellular.traffic import PAPER_BANDWIDTH_UNITS, PAPER_TRAFFIC_MIX, TrafficMix

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..workloads import WorkloadSpec

__all__ = ["BatchExperimentConfig", "NetworkExperimentConfig", "PAPER_REQUEST_COUNTS"]

#: The x axis of Figs. 7–10: number of requesting connections.
PAPER_REQUEST_COUNTS: tuple[int, ...] = (10, 20, 30, 40, 50, 60, 70, 80, 90, 100)


@dataclass(frozen=True)
class BatchExperimentConfig:
    """The single-cell experiment behind Figs. 7–10.

    ``request_count`` connection requests arrive as a Poisson stream over
    ``arrival_window_s`` seconds at one base station of ``capacity_bu``
    bandwidth units.  Each request draws a service class from ``traffic_mix``
    and a GPS observation from ``user_profile``; admitted calls hold their
    bandwidth for an exponential class-dependent holding time.  The measured
    output is the percentage of accepted calls.
    """

    request_count: int = 50
    capacity_bu: int = PAPER_BANDWIDTH_UNITS
    traffic_mix: TrafficMix = PAPER_TRAFFIC_MIX
    user_profile: UserProfile = field(default_factory=UserProfile)
    #: Window over which the requests arrive (seconds).  2000 s with the
    #: paper's traffic mix produces the mid-range occupancies where the
    #: admission policies differ, matching the dynamic range of Figs. 7–10.
    arrival_window_s: float = 2000.0
    seed: int = 20070625
    #: Distance (km) assumed between the user and the BS when the profile
    #: fixes it; only used for metadata, the profile is authoritative.
    replication: int = 0
    #: Optional workload model (:class:`repro.workloads.WorkloadSpec`).
    #: ``None`` is the legacy behaviour — Poisson arrivals over the window
    #: with ``traffic_mix`` — reproduced bit for bit; a spec swaps in its
    #: arrival process and (when it defines classes) its service mix, and
    #: turns on the per-class admission counters.
    workload: "WorkloadSpec | None" = None

    def __post_init__(self) -> None:
        if self.request_count < 0:
            raise ValueError(f"request_count must be non-negative, got {self.request_count}")
        if self.capacity_bu <= 0:
            raise ValueError(f"capacity_bu must be positive, got {self.capacity_bu}")
        if self.arrival_window_s <= 0:
            raise ValueError(
                f"arrival_window_s must be positive, got {self.arrival_window_s}"
            )

    def effective_traffic_mix(self) -> TrafficMix:
        """The mix requests draw from: the workload's, else the config's."""
        if self.workload is not None:
            mix = self.workload.traffic_mix()
            if mix is not None:
                return mix
        return self.traffic_mix

    @property
    def stream_master_seed(self) -> int:
        """Master seed of this replication's random streams.

        Combines the scenario seed with the replication index so replications
        are independent; the derivation is a pure function of the config, so
        any worker process reproduces the exact same streams regardless of
        execution order.
        """
        return self.seed + 1_000_003 * self.replication

    def with_requests(self, request_count: int) -> "BatchExperimentConfig":
        """Copy of this config with a different request count."""
        return replace(self, request_count=request_count)

    def with_seed(self, seed: int, replication: int = 0) -> "BatchExperimentConfig":
        """Copy of this config with a different seed/replication index."""
        return replace(self, seed=seed, replication=replication)

    def with_profile(self, profile: UserProfile) -> "BatchExperimentConfig":
        """Copy of this config with a different user-attribute profile."""
        return replace(self, user_profile=profile)


@dataclass(frozen=True)
class NetworkExperimentConfig:
    """The multi-cell integration experiment (handoffs, dropping).

    A hexagonal network of ``rings`` rings is loaded with Poisson call
    arrivals for ``duration_s`` seconds; mobile terminals move with a
    Gauss–Markov model and hand off between cells, so the experiment
    exercises admission of both new and handoff calls and measures dropping.
    """

    rings: int = 1
    cell_radius_km: float = 2.0
    capacity_bu: int = PAPER_BANDWIDTH_UNITS
    traffic_mix: TrafficMix = PAPER_TRAFFIC_MIX
    arrival_rate_per_cell_per_s: float = 0.02
    duration_s: float = 3600.0
    mobility_update_s: float = 10.0
    mean_speed_kmh: float = 40.0
    seed: int = 20070626
    replication: int = 0
    #: Optional per-cell capacity override, one entry per cell in spiral
    #: (cell-id) order; ``None`` gives every cell ``capacity_bu``.  Lets a
    #: topology model a congested downtown core next to lightly provisioned
    #: suburbs without forking the config schema.
    cell_capacities: tuple[int, ...] | None = None
    #: Optional workload model; ``None`` keeps the legacy Poisson arrivals
    #: and ``traffic_mix`` bit for bit (see
    #: :attr:`BatchExperimentConfig.workload`).
    workload: "WorkloadSpec | None" = None

    def __post_init__(self) -> None:
        if self.rings < 0:
            raise ValueError(f"rings must be non-negative, got {self.rings}")
        if self.cell_radius_km <= 0:
            raise ValueError(f"cell_radius_km must be positive, got {self.cell_radius_km}")
        if self.capacity_bu <= 0:
            raise ValueError(f"capacity_bu must be positive, got {self.capacity_bu}")
        if self.arrival_rate_per_cell_per_s <= 0:
            raise ValueError(
                "arrival_rate_per_cell_per_s must be positive, "
                f"got {self.arrival_rate_per_cell_per_s}"
            )
        if self.duration_s <= 0:
            raise ValueError(f"duration_s must be positive, got {self.duration_s}")
        if self.mobility_update_s <= 0:
            raise ValueError(
                f"mobility_update_s must be positive, got {self.mobility_update_s}"
            )
        if self.mean_speed_kmh < 0:
            raise ValueError(f"mean_speed_kmh must be non-negative, got {self.mean_speed_kmh}")
        if self.replication < 0:
            raise ValueError(f"replication must be non-negative, got {self.replication}")
        if self.cell_capacities is not None:
            object.__setattr__(self, "cell_capacities", tuple(self.cell_capacities))
            expected = hex_cell_count(self.rings)
            if len(self.cell_capacities) != expected:
                raise ValueError(
                    f"cell_capacities must list one capacity per cell "
                    f"({expected} for rings={self.rings}), "
                    f"got {len(self.cell_capacities)}"
                )
            for capacity in self.cell_capacities:
                if not isinstance(capacity, int) or isinstance(capacity, bool) or capacity <= 0:
                    raise ValueError(
                        f"cell capacities must be positive integers, got {capacity!r}"
                    )

    def capacity_for(self, cell_index: int) -> int:
        """Capacity (BU) of the cell at ``cell_index`` in spiral order."""
        if self.cell_capacities is None:
            return self.capacity_bu
        return self.cell_capacities[cell_index]

    def effective_traffic_mix(self) -> TrafficMix:
        """The mix arrivals draw from: the workload's, else the config's."""
        if self.workload is not None:
            mix = self.workload.traffic_mix()
            if mix is not None:
                return mix
        return self.traffic_mix

    @property
    def stream_master_seed(self) -> int:
        """Master seed of this replication's random streams.

        Mirrors :attr:`BatchExperimentConfig.stream_master_seed`: the seed is
        a pure function of ``(seed, replication)``, so any worker process or
        thread reproduces exactly the same streams regardless of execution
        order, and ``replication == 0`` reproduces the historical single-run
        behaviour bit for bit.
        """
        return self.seed + 1_000_003 * self.replication

    def with_arrival_rate(self, arrival_rate_per_cell_per_s: float) -> "NetworkExperimentConfig":
        """Copy of this config with a different per-cell arrival rate."""
        return replace(self, arrival_rate_per_cell_per_s=arrival_rate_per_cell_per_s)

    def with_seed(self, seed: int, replication: int = 0) -> "NetworkExperimentConfig":
        """Copy of this config with a different seed/replication index."""
        return replace(self, seed=seed, replication=replication)

    def with_duration(self, duration_s: float) -> "NetworkExperimentConfig":
        """Copy of this config with a different simulated duration."""
        return replace(self, duration_s=duration_s)
