"""The Runner facade: ``run(scenario) -> RunReport``.

One entry point executes every scenario kind.  The returned
:class:`RunReport` carries both halves of an experiment's output — the
rendered ASCII artifact (exactly what the CLI prints) and machine-readable
metrics — and persists to ``results/`` as a single JSON document that also
embeds the scenario, so a saved report is a self-describing, re-runnable
record.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Any, Callable, Mapping

from ..analysis.frame import MetricsFrame
from ..analysis.io import (
    PayloadVersionError,
    metrics_frame_to_dict,
    migrate_payload,
    network_sweep_result_to_dict,
    sweep_result_to_dict,
    versioned_payload,
    write_guarded_json,
)
from ..analysis.plotting import ascii_line_plot
from ..analysis.tables import format_curve_table, format_table
from ..cac.facs.system import FACSConfig
from ..cellular.mobility import UserProfile
from ..cellular.network import hex_cell_count
from ..experiments.network_sweep import (
    DEFAULT_NETWORK_BASE_CONFIG,
    network_sweep_spec,
    render_network_sweep,
)
from ..simulation.config import BatchExperimentConfig, NetworkExperimentConfig
from ..simulation.engine import NetworkRunOutput, run_network_experiment
from ..simulation.executor import SweepExecutor, executor_by_name
from ..simulation.sweep import (
    NetworkSweepResult,
    SweepResult,
    run_coupled_sharded_network_sweep,
    run_network_sweep,
    run_sharded_network_sweep,
)
from ..simulation.results import RunResult
from ..simulation.trace import TraceRunResult, run_trace_arrivals
from ..service.replay import run_service_replay
from ..service.server import ServiceConfig, ServiceReport, render_service_report
from ..tuning.engine import render_tuning_report, run_tuning
from ..workloads import resolve_workload
from .registry import (
    ABLATIONS,
    ARTIFACTS,
    FIGURES,
    SCENARIOS,
    SURFACES,
    controller_factory,
)
from .scenario import (
    AblationScenario,
    ArtifactScenario,
    CoupledShardedNetworkSweepScenario,
    FigureSweepScenario,
    NetworkIntegrationScenario,
    NetworkSweepScenario,
    Scenario,
    ScenarioError,
    ServiceReplayScenario,
    ShardedNetworkSweepScenario,
    SurfaceScenario,
    TraceArrivalsScenario,
    TuningScenario,
)

__all__ = [
    "Runner",
    "RunReport",
    "execution_normalized",
    "register_runner",
    "report_stem",
    "run",
]


@dataclass(frozen=True)
class RunReport:
    """Typed result of one scenario run.

    ``text`` is the rendered ASCII artifact — byte-identical to what the
    pre-redesign CLI printed for the equivalent command.  ``metrics`` is
    the machine-readable counterpart (plain-JSON types only).
    """

    scenario: Scenario
    text: str
    metrics: Mapping[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return versioned_payload(
            {
                "scenario": self.scenario.to_dict(),
                "metrics": dict(self.metrics),
                "text": self.text,
            }
        )

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @property
    def stem(self) -> str:
        """Deterministic filename stem of this report.

        The registered default scenario of a slug keeps the plain slug
        (``fig7-speed.json``); any other parameterization appends a digest
        of its canonical scenario JSON (``fig7-speed-1a2b3c4d5e.json``), so
        two scenarios differing only in parameters can never map to the
        same file.  Execution-backend fields (executor/workers) are
        normalized out first — results are backend-independent, so runs of
        one experiment map to one file regardless of how they executed.
        """
        return report_stem(self.scenario)

    def save(self, directory: str | Path) -> Path:
        """Persist the report as ``<directory>/<stem>.json``.

        Re-saving the same scenario's report overwrites (runs are
        deterministic, and the execution backend is not part of a
        scenario's identity); a target file holding anything else raises
        :class:`ScenarioError` instead of silently clobbering it.
        """
        mine = _execution_normalized(self.scenario)
        return write_guarded_json(
            Path(directory) / f"{self.stem}.json",
            self.to_json() + "\n",
            lambda existing: (
                _execution_normalized(Scenario.from_dict(existing["scenario"])) == mine
            ),
            ScenarioError,
            "scenario",
        )

    @staticmethod
    def from_dict(payload: Mapping[str, Any], source: str = "payload") -> "RunReport":
        """Decode a report payload, migrating older schema versions."""
        if not isinstance(payload, Mapping):
            raise ScenarioError(
                f"run report {source} must be a mapping, "
                f"got {type(payload).__name__}"
            )
        try:
            data = migrate_payload(payload, "run report")
        except PayloadVersionError as exc:
            raise ScenarioError(f"run report {source}: {exc}") from None
        try:
            return RunReport(
                scenario=Scenario.from_dict(data["scenario"]),
                text=data["text"],
                metrics=data["metrics"],
            )
        except KeyError as exc:
            raise ScenarioError(
                f"run report {source} is missing key {exc}"
            ) from None

    @staticmethod
    def load(path: str | Path) -> "RunReport":
        """Rebuild a report previously written by :meth:`save`."""
        try:
            payload = json.loads(Path(path).read_text())
        except json.JSONDecodeError as exc:
            raise ScenarioError(f"report {path} is not valid JSON: {exc}") from exc
        return RunReport.from_dict(payload, source=str(path))


def execution_normalized(scenario: Scenario) -> Scenario:
    """Copy of ``scenario`` with execution-backend fields reset.

    Results are byte-identical for every backend and worker count, so the
    executor/workers fields shape *how* a scenario runs, never *what* it
    produces — filename identity, overwrite guards and the campaign
    member cache ignore them.
    """
    names = {spec.name for spec in fields(scenario)}
    updates: dict[str, Any] = {}
    if "executor" in names:
        updates["executor"] = "serial"
    if "workers" in names:
        updates["workers"] = None
    return replace(scenario, **updates) if updates else scenario


#: Backwards-compatible private alias (pre-refactor name).
_execution_normalized = execution_normalized


def report_stem(scenario: Scenario) -> str:
    """Deterministic report filename stem of ``scenario``.

    Shared by :attr:`RunReport.stem` and the campaign member cache, so a
    saved report can be found again from the scenario alone.
    """
    normalized = execution_normalized(scenario)
    slug = normalized.slug
    for experiment_id in SCENARIOS.names():
        if SCENARIOS.get(experiment_id)() == normalized:
            return slug
    digest = hashlib.sha256(normalized.to_json(indent=None).encode()).hexdigest()[:10]
    return f"{slug}-{digest}"


Handler = Callable[[Scenario], tuple[str, dict[str, Any]]]
_HANDLERS: dict[type, Handler] = {}


def register_runner(scenario_cls: type):
    """Decorator registering the execution handler of a scenario class.

    The handler receives the scenario and returns ``(text, metrics)``.
    Together with :func:`repro.api.scenario.scenario_kind` this completes
    the extension path for new experiment kinds: register the dataclass
    for serialization, register its handler here, and
    :meth:`Runner.run` dispatches to it (subclasses inherit their parent's
    handler unless they register their own).
    """

    def decorator(handler: Handler) -> Handler:
        _HANDLERS[scenario_cls] = handler
        return handler

    return decorator


#: Internal alias kept for the built-in handlers below.
_handles = register_runner


class Runner:
    """Facade executing declarative scenarios.

    >>> from repro.api import Runner, scenario_for
    >>> report = Runner().run(scenario_for("table1-frb1"))
    >>> print(report.text)          # the paper artifact
    >>> report.save("results")      # persist artifact + metrics + scenario
    """

    def run(self, scenario: Scenario) -> RunReport:
        """Execute ``scenario`` and return its :class:`RunReport`."""
        handler = next(
            (
                _HANDLERS[cls]
                for cls in type(scenario).__mro__
                if cls in _HANDLERS
            ),
            None,
        )
        if handler is None:
            raise ScenarioError(
                f"no runner is registered for scenario type "
                f"{type(scenario).__name__} (kind {scenario.kind!r}); "
                f"register one with repro.api.register_runner"
            )
        text, metrics = handler(scenario)
        return RunReport(scenario=scenario, text=text, metrics=metrics)


def run(scenario: Scenario) -> RunReport:
    """Module-level convenience wrapper around :meth:`Runner.run`."""
    return Runner().run(scenario)


# ----------------------------------------------------------------------
# Per-kind handlers
# ----------------------------------------------------------------------
def _build_executor(scenario: Any) -> SweepExecutor:
    return executor_by_name(scenario.executor, workers=scenario.workers)


def _sweep_metrics(result: SweepResult | NetworkSweepResult) -> dict[str, Any]:
    """Machine-readable metrics of a sweep: curves plus the columnar frame.

    The ``frame`` payload (schema-versioned ``metrics-frame``) is the
    replication-level record store behind the rendered curves — new in
    schema v2, additive, so every pre-frame consumer keeps working.
    """
    payload = (
        network_sweep_result_to_dict(result)
        if isinstance(result, NetworkSweepResult)
        else sweep_result_to_dict(result)
    )
    if result.frame is not None:
        payload["frame"] = metrics_frame_to_dict(result.frame)
    return payload


@_handles(ArtifactScenario)
def _run_artifact(scenario: ArtifactScenario) -> tuple[str, dict[str, Any]]:
    text = ARTIFACTS.get(scenario.artifact)()
    return text, {"type": "artifact", "artifact": scenario.artifact}


@_handles(SurfaceScenario)
def _run_surface(scenario: SurfaceScenario) -> tuple[str, dict[str, Any]]:
    definition = SURFACES.get(scenario.surface)
    fixed = (
        definition.default_fixed
        if scenario.fixed_value is None
        else scenario.fixed_value
    )
    xs, ys, values = definition.grid(
        **{
            definition.fixed_kwarg: fixed,
            "resolution": scenario.resolution,
            "engine": scenario.engine,
        }
    )
    text = definition.render_grid(xs, ys, values, **{definition.fixed_kwarg: fixed})
    metrics = {
        "type": "surface",
        "surface": scenario.surface,
        "fixed": {definition.fixed_kwarg: fixed},
        "x": xs,
        "y": ys,
        "values": values,
    }
    return text, metrics


@_handles(FigureSweepScenario)
def _run_figure_sweep(scenario: FigureSweepScenario) -> tuple[str, dict[str, Any]]:
    definition = FIGURES.get(scenario.figure)
    kwargs: dict[str, Any] = {
        "request_counts": scenario.request_counts,
        "replications": scenario.replications,
        "facs_config": FACSConfig(engine=scenario.engine),
        "executor": _build_executor(scenario),
    }
    if scenario.seed is not None:
        kwargs["seed"] = scenario.seed
    if scenario.curve_values is not None:
        kwargs[definition.curve_kwarg] = scenario.curve_values
    if scenario.workload is not None:
        kwargs["workload"] = resolve_workload(scenario.workload)
    result = definition.reproduce(**kwargs)
    return definition.render(result), _sweep_metrics(result)


def _network_sweep_spec_for(scenario: NetworkSweepScenario):
    """Shared spec construction of the coupled and sharded network sweeps."""
    controllers = {
        name: controller_factory(name, engine=scenario.engine)
        for name in scenario.controllers
    }
    base_config = replace(
        DEFAULT_NETWORK_BASE_CONFIG,
        rings=scenario.rings,
        cell_radius_km=scenario.cell_radius_km,
        duration_s=scenario.duration_s,
        mean_speed_kmh=scenario.mean_speed_kmh,
        seed=scenario.seed,
        # Only the coupled-sharded scenario kind carries a per-cell
        # capacity map; the others keep the uniform default.
        cell_capacities=getattr(scenario, "cell_capacities", None),
        workload=resolve_workload(scenario.workload),
    )
    return network_sweep_spec(
        arrival_rates=scenario.arrival_rates,
        replications=scenario.replications,
        base_config=base_config,
        controllers=controllers,
    )


@_handles(NetworkSweepScenario)
def _run_network_sweep(scenario: NetworkSweepScenario) -> tuple[str, dict[str, Any]]:
    spec = _network_sweep_spec_for(scenario)
    result = run_network_sweep(spec, executor=_build_executor(scenario))
    return render_network_sweep(result), _sweep_metrics(result)


@_handles(ShardedNetworkSweepScenario)
def _run_sharded_network_sweep(
    scenario: ShardedNetworkSweepScenario,
) -> tuple[str, dict[str, Any]]:
    spec = _network_sweep_spec_for(scenario)
    result = run_sharded_network_sweep(spec, executor=_build_executor(scenario))
    metrics = _sweep_metrics(result)
    # Provenance: this kind decomposes cells into independent runs, so
    # handoff coupling is dropped by design — campaign comparisons against
    # the coupled kinds must be able to see that from the report alone.
    metrics["handoff_coupling"] = "dropped"
    return render_network_sweep(result), metrics


@_handles(CoupledShardedNetworkSweepScenario)
def _run_coupled_sharded_network_sweep(
    scenario: CoupledShardedNetworkSweepScenario,
) -> tuple[str, dict[str, Any]]:
    spec = _network_sweep_spec_for(scenario)
    result = run_coupled_sharded_network_sweep(
        spec, executor=_build_executor(scenario), window_s=scenario.window_s
    )
    metrics = _sweep_metrics(result)
    metrics["handoff_coupling"] = "messages"
    return render_network_sweep(result), metrics


def _render_ablation(result: SweepResult) -> str:
    """Generic table + plot rendering for the ablation sweeps."""
    x_values = result.curves[0].request_counts()
    series = {curve.label: curve.acceptance_series() for curve in result.curves}
    table = format_curve_table(
        "Requests",
        x_values,
        series,
        title=f"{result.name} — acceptance percentage vs requesting connections",
    )
    if len(x_values) < 2:
        return table
    plot = ascii_line_plot(
        [float(x) for x in x_values],
        series,
        y_label="percentage of accepted calls",
        x_label="number of requesting connections",
        title=result.name,
    )
    return f"{table}\n\n{plot}"


@_handles(AblationScenario)
def _run_ablation(scenario: AblationScenario) -> tuple[str, dict[str, Any]]:
    reproduce = ABLATIONS.get(scenario.ablation)
    kwargs: dict[str, Any] = {"replications": scenario.replications}
    if scenario.request_counts is not None:
        kwargs["request_counts"] = scenario.request_counts
    if scenario.seed is not None:
        kwargs["seed"] = scenario.seed
    result = reproduce(**kwargs)
    return _render_ablation(result), _sweep_metrics(result)


def _network_run_metrics(output: NetworkRunOutput) -> dict[str, Any]:
    metrics = output.result.metrics
    return {
        "requested": metrics.requested,
        "acceptance_percentage": metrics.acceptance_percentage,
        "blocking_probability": metrics.blocking_probability,
        "dropping_probability": metrics.dropping_probability,
        "handoff_attempts": output.handoff_attempts,
        "handoff_failure_ratio": output.handoff_failure_ratio,
        "time_average_occupancy_bu": output.time_average_occupancy_bu,
    }


@_handles(NetworkIntegrationScenario)
def _run_network_integration(
    scenario: NetworkIntegrationScenario,
) -> tuple[str, dict[str, Any]]:
    config = NetworkExperimentConfig(
        rings=scenario.rings,
        cell_radius_km=scenario.cell_radius_km,
        arrival_rate_per_cell_per_s=scenario.arrival_rate_per_cell_per_s,
        duration_s=scenario.duration_s,
        mean_speed_kmh=scenario.mean_speed_kmh,
        seed=scenario.seed,
    )
    per_controller: dict[str, dict[str, Any]] = {}
    outputs = []
    rows = []
    for name in scenario.controllers:
        output = run_network_experiment(config, controller_factory(name, engine=scenario.engine))
        outputs.append(output)
        numbers = _network_run_metrics(output)
        per_controller[name] = numbers
        rows.append(
            [
                name,
                numbers["requested"],
                f"{numbers['acceptance_percentage']:.1f}%",
                f"{numbers['blocking_probability']:.3f}",
                f"{numbers['dropping_probability']:.3f}",
                numbers["handoff_attempts"],
                f"{numbers['handoff_failure_ratio']:.3f}",
                f"{numbers['time_average_occupancy_bu']:.1f}",
            ]
        )
    text = format_table(
        [
            "Controller",
            "Requests",
            "Accepted",
            "P(block)",
            "P(drop)",
            "Handoffs",
            "Handoff fail",
            "Avg BU in use",
        ],
        rows,
        title=(
            f"{hex_cell_count(scenario.rings)}-cell network, "
            f"{scenario.duration_s:.0f}s of Poisson arrivals, "
            f"Gauss-Markov mobility"
        ),
    )
    frame = MetricsFrame.from_network_outputs(outputs, labels=list(scenario.controllers))
    metrics = {
        "type": "network-integration",
        "controllers": per_controller,
        "frame": metrics_frame_to_dict(frame),
    }
    return text, metrics


def _render_trace_arrivals(result: TraceRunResult) -> str:
    """Per-batch table plus a one-line summary for the trace pipeline."""
    rows = [
        [
            record.index,
            f"{record.start_time_s:.1f}",
            record.size,
            record.accepted,
            record.occupancy_before_bu,
            record.occupancy_after_bu,
        ]
        for record in result.batches
    ]
    table = format_table(
        ["Batch", "t (s)", "Requests", "Accepted", "BU before", "BU after"],
        rows,
        title=(
            f"{result.controller} trace-driven admission, "
            f"batch size {result.batch_size}"
        ),
    )
    summary = (
        f"accepted {result.accepted}/{result.requested} requests "
        f"({result.acceptance_percentage:.1f}%), "
        f"peak occupancy {result.peak_occupancy_bu} BU"
    )
    return f"{table}\n\n{summary}"


@_handles(TraceArrivalsScenario)
def _run_trace_arrivals(scenario: TraceArrivalsScenario) -> tuple[str, dict[str, Any]]:
    config = BatchExperimentConfig(
        request_count=scenario.request_count,
        arrival_window_s=scenario.arrival_window_s,
        user_profile=UserProfile(
            speed_kmh=scenario.speed_kmh,
            angle_deg=scenario.angle_deg,
            distance_km=scenario.distance_km,
        ),
        seed=scenario.seed,
        workload=resolve_workload(scenario.workload),
    )
    result = run_trace_arrivals(
        config,
        batch_size=scenario.batch_size,
        facs_config=FACSConfig(engine=scenario.engine),
        stream=scenario.stream,
    )
    frame = MetricsFrame.from_run_results([result.to_run_result(seed=scenario.seed)])
    metrics = {
        "type": "trace-arrivals",
        "controller": result.controller,
        "requested": result.requested,
        "accepted": result.accepted,
        "acceptance_percentage": result.acceptance_percentage,
        "batch_size": result.batch_size,
        "peak_occupancy_bu": result.peak_occupancy_bu,
        "frame": metrics_frame_to_dict(frame),
        # Provenance only: both paths are byte-identical, so the key rides
        # along just when the fast path was requested (keeping default
        # reports byte-stable).
        **({"stream": True} if scenario.stream else {}),
        "batches": [
            {
                "index": record.index,
                "start_time_s": record.start_time_s,
                "size": record.size,
                "accepted": record.accepted,
                "occupancy_before_bu": record.occupancy_before_bu,
                "occupancy_after_bu": record.occupancy_after_bu,
            }
            for record in result.batches
        ],
    }
    return _render_trace_arrivals(result), metrics


def _service_run_result(report: ServiceReport, seed: int) -> RunResult:
    """The service session as a counter row for the columnar result store.

    Batching knobs and the latency/throughput observables ride as
    parameters, so a campaign frame over several batching configurations
    can ``group_reduce`` acceptance against them column-for-column.
    """
    return RunResult(
        controller=report.controller,
        metrics=report.metrics,
        parameters={
            "request_count": float(report.submitted),
            "max_batch": float(report.config.max_batch),
            "max_wait_ms": float(report.config.max_wait_ms),
            "queue_capacity": float(report.config.queue_capacity),
            "p50_latency_ms": report.latency.p50_ms,
            "p99_latency_ms": report.latency.p99_ms,
            "throughput_dps": report.throughput_dps,
        },
        seed=seed,
    )


@_handles(ServiceReplayScenario)
def _run_service_replay(scenario: ServiceReplayScenario) -> tuple[str, dict[str, Any]]:
    config = BatchExperimentConfig(
        request_count=scenario.request_count,
        arrival_window_s=scenario.arrival_window_s,
        user_profile=UserProfile(
            speed_kmh=scenario.speed_kmh,
            angle_deg=scenario.angle_deg,
            distance_km=scenario.distance_km,
        ),
        seed=scenario.seed,
        workload=resolve_workload(scenario.workload),
    )
    report = run_service_replay(
        config,
        service=ServiceConfig(
            max_batch=scenario.max_batch,
            max_wait_ms=scenario.max_wait_ms,
            queue_capacity=scenario.queue_capacity,
        ),
        facs_config=FACSConfig(engine=scenario.engine),
    )
    frame = MetricsFrame.from_run_results([_service_run_result(report, scenario.seed)])
    metrics = {"type": "service-replay", **report.to_dict()}
    metrics["frame"] = metrics_frame_to_dict(frame)
    return render_service_report(report), metrics


@_handles(TuningScenario)
def _run_tuning(scenario: TuningScenario) -> tuple[str, dict[str, Any]]:
    report = run_tuning(
        scenario.base_definition(),
        scenario.search_space(),
        strategy=scenario.strategy,
        objective=scenario.objective,
        direction=scenario.direction,
        request_counts=scenario.request_counts,
        replications=scenario.replications,
        seed=scenario.seed,
        engine=scenario.engine,
        executor=_build_executor(scenario),
        population=scenario.population,
        generations=scenario.generations,
        max_trials=scenario.max_trials,
    )
    return render_tuning_report(report), report.to_dict()
