"""repro.api — the canonical entry point for running experiments.

Every experiment in this repository is a *data object*: a
:class:`Scenario` describing workload, topology, controllers, engine,
executor, seeds and replications, with a lossless
``to_dict``/``from_dict``/JSON round-trip.  The :class:`Runner` facade
turns any scenario into a :class:`RunReport` carrying both the rendered
ASCII artifact and machine-readable metrics, persistable as a single JSON
document.  The CLI (``python -m repro``) is a thin shell over this module.

Quick tour
----------

>>> from repro.api import Runner, Scenario, scenario_for
>>> report = Runner().run(scenario_for("fig10-facs-vs-scc"))
>>> print(report.text)                       # the paper artifact
>>> report.metrics["curves"][0]["label"]     # machine-readable results
'FACS'
>>> path = report.save("results")            # scenario + metrics + text

Scenarios serialize to plain JSON, so the same experiment can live in a
config file and run headless::

    python -m repro run --config scenario.json --format json --save results

Families of scenarios are first-class too: a :class:`Campaign` bundles
ordered member scenarios with shared overrides and a comparison spec, and
:class:`CampaignRunner` fans the members over one shared executor pool
into a :class:`CampaignReport` (per-member reports + cross-scenario
comparison tables)::

    python -m repro campaign --config examples/campaigns/fig7-fig10-study.json

All payloads are schema-versioned (see ``docs/SCHEMA.md``): codecs stamp
:data:`SCHEMA_VERSION`, migrate older versions explicitly and reject
unknown ones loudly.

Extension points are string-keyed registries (see
:mod:`repro.api.registry`): :data:`CONTROLLERS` for admission controllers,
:data:`SCENARIOS` for experiment defaults, :data:`COMPARISON_METRICS` for
cross-scenario comparison columns, plus the engine and executor registries
re-exported here.  Registering a controller makes it addressable from
scenario JSON immediately — the per-cell sharded sweep and the
trace-driven workload kinds plug in through the same seams.
"""

from ..analysis.frame import FrameGroup, FrameRow, MetricsFrame
from ..analysis.io import (
    SCHEMA_VERSION,
    PayloadVersionError,
    metrics_frame_from_dict,
    metrics_frame_to_dict,
)
from ..fuzzy.controller import ENGINES, EngineSpec
from ..registry import Registry, RegistryError
from ..simulation.executor import EXECUTORS
from ..workloads import (
    DEFAULT_SERVICE_CLASSES,
    WORKLOADS,
    ServiceClassDef,
    WorkloadError,
    WorkloadSpec,
    register_workload,
    resolve_workload,
)
from .campaign import (
    Campaign,
    CampaignError,
    CampaignMember,
    CampaignReport,
    CampaignRunner,
    ComparisonSpec,
    run_campaign,
)
from .registry import (
    ABLATIONS,
    ARTIFACTS,
    BENCH_ONLY_EXPERIMENTS,
    CONTROLLERS,
    DEFAULT_NETWORK_CONTROLLERS,
    FIGURES,
    SCENARIOS,
    SURFACES,
    FigureDef,
    SurfaceDef,
    controller_factory,
    register_controller,
    register_scenario,
    scenario_for,
    scenario_ids,
)
from .report import COMPARISON_METRICS, build_comparison, comparison_metric
from .runner import (
    Runner,
    RunReport,
    execution_normalized,
    register_runner,
    report_stem,
    run,
)
from .scenario import (
    SCENARIO_KINDS,
    AblationScenario,
    ArtifactScenario,
    CoupledShardedNetworkSweepScenario,
    FigureSweepScenario,
    NetworkIntegrationScenario,
    NetworkSweepScenario,
    Scenario,
    ScenarioError,
    ServiceReplayScenario,
    ShardedNetworkSweepScenario,
    SurfaceScenario,
    TraceArrivalsScenario,
    TuningScenario,
    scenario_kind,
)

__all__ = [
    # facade
    "Runner",
    "RunReport",
    "run",
    "register_runner",
    "execution_normalized",
    "report_stem",
    # campaigns
    "Campaign",
    "CampaignError",
    "CampaignMember",
    "CampaignReport",
    "CampaignRunner",
    "ComparisonSpec",
    "run_campaign",
    "COMPARISON_METRICS",
    "comparison_metric",
    "build_comparison",
    # schema versioning
    "SCHEMA_VERSION",
    "PayloadVersionError",
    # columnar result core
    "MetricsFrame",
    "FrameGroup",
    "FrameRow",
    "metrics_frame_to_dict",
    "metrics_frame_from_dict",
    # scenarios
    "Scenario",
    "ScenarioError",
    "ArtifactScenario",
    "SurfaceScenario",
    "FigureSweepScenario",
    "NetworkSweepScenario",
    "ShardedNetworkSweepScenario",
    "CoupledShardedNetworkSweepScenario",
    "AblationScenario",
    "NetworkIntegrationScenario",
    "TraceArrivalsScenario",
    "ServiceReplayScenario",
    "TuningScenario",
    "SCENARIO_KINDS",
    "scenario_kind",
    # registries
    "Registry",
    "RegistryError",
    "CONTROLLERS",
    "ENGINES",
    "EngineSpec",
    "EXECUTORS",
    "FIGURES",
    "FigureDef",
    "ARTIFACTS",
    "SURFACES",
    "SurfaceDef",
    "ABLATIONS",
    "SCENARIOS",
    "register_controller",
    "register_scenario",
    "controller_factory",
    "scenario_for",
    "scenario_ids",
    "DEFAULT_NETWORK_CONTROLLERS",
    "BENCH_ONLY_EXPERIMENTS",
    # workloads
    "WORKLOADS",
    "WorkloadSpec",
    "WorkloadError",
    "ServiceClassDef",
    "DEFAULT_SERVICE_CLASSES",
    "register_workload",
    "resolve_workload",
]
