"""Campaigns: families of scenarios as one first-class, serializable object.

The paper's results are not single runs but *studies* — CBP/CDP curves per
controller across arrival rates, figure sweeps per attribute, ablations —
and a :class:`Campaign` describes one study end to end: an ordered list of
named member scenarios, shared overrides (engine/seed applied to every
member, executor/workers selecting the shared pool), and a
:class:`ComparisonSpec` naming the metrics to tabulate across scenarios.
Campaigns carry the same contract as scenarios: strict validation, loud
decode errors and lossless, schema-versioned ``to_dict``/JSON round-trips.

:class:`CampaignRunner` executes the members concurrently over **one**
shared :class:`~repro.simulation.executor.SweepExecutor` pool — the same
aggregation move scalable collective protocols make, many point-to-point
operations fanned through one primitive — and returns a
:class:`CampaignReport`: every member's :class:`~repro.api.RunReport` plus
the rendered cross-scenario comparison.  Results are byte-identical for
every backend (serial/thread/process) and worker count: members are
resolved to a pure function of the campaign before execution, and the
report embeds the execution-normalized campaign, so the backend never
leaks into the artifact.
"""

from __future__ import annotations

import dataclasses
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from ..analysis.io import (
    PayloadVersionError,
    migrate_payload,
    versioned_payload,
    write_guarded_json,
)
from ..fuzzy.controller import ENGINES
from ..simulation.executor import EXECUTORS, executor_by_name
from .report import COMPARISON_METRICS, build_comparison
from .runner import Runner, RunReport, execution_normalized, report_stem
from .scenario import Scenario, ScenarioError

__all__ = [
    "Campaign",
    "CampaignError",
    "CampaignMember",
    "CampaignReport",
    "CampaignRunner",
    "ComparisonSpec",
    "run_campaign",
]

#: Valid campaign names and member ids: filesystem- and table-friendly.
_NAME_PATTERN = re.compile(r"[A-Za-z0-9][A-Za-z0-9._-]*\Z")


class CampaignError(ScenarioError):
    """Raised when a campaign is invalid or a payload cannot be decoded."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise CampaignError(message)


def _check_name(value: object, what: str) -> None:
    _require(
        isinstance(value, str) and bool(_NAME_PATTERN.match(value)),
        f"{what} must match {_NAME_PATTERN.pattern!r} "
        f"(letters, digits, '.', '_', '-'), got {value!r}",
    )


@dataclass(frozen=True)
class ComparisonSpec:
    """Which metrics the campaign tabulates across its scenarios.

    ``baseline`` optionally names a member id to difference against: the
    comparison then adds a ``Δ<metric>`` column per metric (and a
    ``deltas`` mapping per payload row) relative to that reference
    scenario's value for the same curve label (or its only curve).
    """

    metrics: tuple[str, ...] = ("mean_acceptance",)
    baseline: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "metrics", tuple(self.metrics))
        _require(len(self.metrics) > 0, "at least one comparison metric is required")
        for name in self.metrics:
            _require(
                isinstance(name, str) and name in COMPARISON_METRICS,
                f"unknown comparison metric {name!r}; "
                f"available: {list(COMPARISON_METRICS)}",
            )
        duplicates = sorted({m for m in self.metrics if self.metrics.count(m) > 1})
        _require(
            not duplicates, f"duplicate comparison metrics: {', '.join(duplicates)}"
        )
        if self.baseline is not None:
            _check_name(self.baseline, "comparison baseline")

    def to_dict(self) -> dict[str, Any]:
        return {"metrics": list(self.metrics), "baseline": self.baseline}

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "ComparisonSpec":
        if not isinstance(payload, Mapping):
            raise CampaignError(
                f"comparison spec must be a mapping, got {type(payload).__name__}"
            )
        unknown = sorted(set(payload) - {"metrics", "baseline"})
        _require(not unknown, f"unknown comparison spec field(s): {unknown}")
        metrics = payload.get("metrics", ("mean_acceptance",))
        _require(
            isinstance(metrics, (list, tuple)),
            f"comparison metrics must be a list, got {metrics!r}",
        )
        return ComparisonSpec(metrics=tuple(metrics), baseline=payload.get("baseline"))


@dataclass(frozen=True)
class CampaignMember:
    """One named scenario of a campaign."""

    id: str
    scenario: Scenario

    def __post_init__(self) -> None:
        _check_name(self.id, "member id")
        _require(
            isinstance(self.scenario, Scenario),
            f"member {self.id!r} scenario must be a Scenario, "
            f"got {type(self.scenario).__name__}",
        )

    def to_dict(self) -> dict[str, Any]:
        return {"id": self.id, "scenario": self.scenario.to_dict()}

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "CampaignMember":
        if not isinstance(payload, Mapping):
            raise CampaignError(
                f"campaign member must be a mapping, got {type(payload).__name__}"
            )
        unknown = sorted(set(payload) - {"id", "scenario"})
        _require(not unknown, f"unknown campaign member field(s): {unknown}")
        _require("id" in payload, "campaign member needs an 'id'")
        _require("scenario" in payload, "campaign member needs a 'scenario'")
        return CampaignMember(
            id=payload["id"], scenario=Scenario.from_dict(payload["scenario"])
        )


@dataclass(frozen=True)
class Campaign:
    """A declarative multi-scenario study.

    ``engine`` and ``seed`` of ``None`` leave every member scenario's own
    value in place; a non-``None`` override is applied to every member
    that has the corresponding field.  ``executor``/``workers`` select the
    shared pool the members fan over — member-level executors are always
    normalized to serial, because the campaign owns the parallelism.
    """

    name: str
    members: tuple[CampaignMember, ...]
    engine: str | None = None
    executor: str = "serial"
    workers: int | None = None
    seed: int | None = None
    comparison: ComparisonSpec = ComparisonSpec()

    def __post_init__(self) -> None:
        object.__setattr__(self, "members", tuple(self.members))
        _check_name(self.name, "campaign name")
        _require(len(self.members) > 0, "a campaign needs at least one member")
        for member in self.members:
            _require(
                isinstance(member, CampaignMember),
                f"campaign members must be CampaignMember instances, "
                f"got {type(member).__name__}",
            )
        ids = [member.id for member in self.members]
        duplicates = sorted({i for i in ids if ids.count(i) > 1})
        _require(not duplicates, f"duplicate member ids: {', '.join(duplicates)}")
        _require(
            self.engine is None or self.engine in ENGINES,
            f"unknown engine {self.engine!r}; available: {list(ENGINES)}",
        )
        _require(
            self.executor in EXECUTORS,
            f"unknown executor {self.executor!r}; available: {list(EXECUTORS)}",
        )
        if self.workers is not None:
            _require(
                isinstance(self.workers, int)
                and not isinstance(self.workers, bool)
                and self.workers >= 1,
                f"workers must be an integer >= 1, got {self.workers!r}",
            )
            _require(
                self.executor != "serial",
                "workers requires a pool executor (process or thread)",
            )
        _require(
            self.seed is None
            or (isinstance(self.seed, int) and not isinstance(self.seed, bool)),
            f"seed must be an integer or null, got {self.seed!r}",
        )
        _require(
            isinstance(self.comparison, ComparisonSpec),
            f"comparison must be a ComparisonSpec, "
            f"got {type(self.comparison).__name__}",
        )
        _require(
            self.comparison.baseline is None or self.comparison.baseline in ids,
            f"comparison baseline {self.comparison.baseline!r} is not a member "
            f"id; members: {ids}",
        )

    # ------------------------------------------------------------------
    def resolved_scenarios(self) -> tuple[Scenario, ...]:
        """Member scenarios with the shared overrides applied.

        A pure function of the campaign alone: engine/seed overrides are
        written into every member that has the field, and member-level
        executors are normalized to serial (the campaign pool owns the
        parallelism) — so the resolved scenarios, and therefore the
        member reports, never depend on the backend the campaign happens
        to run on.
        """
        resolved: list[Scenario] = []
        for member in self.members:
            scenario = member.scenario
            names = {spec.name for spec in dataclasses.fields(scenario)}
            updates: dict[str, Any] = {}
            if self.engine is not None and "engine" in names:
                updates["engine"] = self.engine
            if self.seed is not None and "seed" in names:
                updates["seed"] = self.seed
            if "executor" in names:
                updates["executor"] = "serial"
            if "workers" in names:
                updates["workers"] = None
            if updates:
                scenario = dataclasses.replace(scenario, **updates)
            resolved.append(scenario)
        return tuple(resolved)

    def execution_normalized(self) -> "Campaign":
        """Copy of this campaign with the execution backend reset.

        The backend (executor/workers) shapes *how* a campaign runs, never
        *what* it produces; reports embed this normalized form so their
        JSON is byte-identical across backends.
        """
        return dataclasses.replace(self, executor="serial", workers=None)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return versioned_payload(
            {
                "type": "campaign",
                "name": self.name,
                "members": [member.to_dict() for member in self.members],
                "engine": self.engine,
                "executor": self.executor,
                "workers": self.workers,
                "seed": self.seed,
                "comparison": self.comparison.to_dict(),
            }
        )

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "Campaign":
        """Decode a campaign payload, rejecting unknown versions and fields."""
        if not isinstance(payload, Mapping):
            raise CampaignError(
                f"campaign payload must be a mapping, got {type(payload).__name__}"
            )
        try:
            data = migrate_payload(payload, "campaign")
        except PayloadVersionError as exc:
            raise CampaignError(str(exc)) from None
        type_tag = data.pop("type", "campaign")
        _require(
            type_tag == "campaign",
            f"expected a 'campaign' payload, got type={type_tag!r}",
        )
        known = {"name", "members", "engine", "executor", "workers", "seed", "comparison"}
        unknown = sorted(set(data) - known)
        _require(
            not unknown,
            f"unknown campaign field(s): {unknown}; expected a subset of {sorted(known)}",
        )
        _require("name" in data, "campaign payload needs a 'name'")
        members_payload = data.get("members")
        _require(
            isinstance(members_payload, (list, tuple)) and len(members_payload) > 0,
            "campaign payload needs a non-empty 'members' list",
        )
        members = tuple(CampaignMember.from_dict(entry) for entry in members_payload)
        comparison = (
            ComparisonSpec.from_dict(data["comparison"])
            if data.get("comparison") is not None
            else ComparisonSpec()
        )
        try:
            return Campaign(
                name=data["name"],
                members=members,
                engine=data.get("engine"),
                executor=data.get("executor", "serial"),
                workers=data.get("workers"),
                seed=data.get("seed"),
                comparison=comparison,
            )
        except (TypeError, ValueError) as exc:
            if isinstance(exc, CampaignError):
                raise
            raise CampaignError(f"invalid campaign: {exc}") from exc

    @staticmethod
    def from_json(text: str) -> "Campaign":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CampaignError(f"campaign JSON does not parse: {exc}") from exc
        return Campaign.from_dict(payload)

    @staticmethod
    def from_file(path: str | Path) -> "Campaign":
        return Campaign.from_json(Path(path).read_text())

    @classmethod
    def from_scenario_dir(
        cls, directory: str | Path, name: str | None = None
    ) -> "Campaign":
        """Build an ad-hoc campaign from a directory of scenario JSONs.

        Every ``*.json`` file (sorted by name) becomes one member whose id
        is the file stem — the headless batch mode: point it at a config
        directory and the whole directory runs as one campaign.
        """
        base = Path(directory)
        files = sorted(base.glob("*.json"))
        if not files:
            raise CampaignError(f"no scenario JSON files found in {base}")
        members = []
        for path in files:
            try:
                members.append(
                    CampaignMember(id=path.stem, scenario=Scenario.from_file(path))
                )
            except ScenarioError as exc:
                raise CampaignError(f"{path}: {exc}") from exc
        if name is None:
            name = re.sub(r"[^A-Za-z0-9._-]+", "-", base.name).strip("-._") or "campaign"
        return cls(name=name, members=tuple(members))


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def _execute_scenario(scenario: Scenario) -> RunReport:
    """Run one member scenario; module-level so process pools can pickle it."""
    return Runner().run(scenario)


def _cached_member_report(directory: Path, scenario: Scenario) -> RunReport | None:
    """A saved report whose digest matches the resolved scenario, or None.

    The lookup key is :func:`repro.api.runner.report_stem` — the same
    content-addressed filename ``RunReport.save`` writes — and the hit is
    confirmed by comparing the saved report's embedded scenario
    (execution-normalized) against the resolved member scenario.  Runs
    are deterministic, so a confirmed hit is exactly what re-running
    would produce; the report is re-stamped with the resolved scenario so
    the campaign report stays byte-identical to an uncached run.
    """
    path = directory / f"{report_stem(scenario)}.json"
    if not path.is_file():
        return None
    try:
        saved = RunReport.load(path)
    except ScenarioError:
        return None
    if execution_normalized(saved.scenario) != execution_normalized(scenario):
        return None
    return RunReport(scenario=scenario, text=saved.text, metrics=saved.metrics)


@dataclass(frozen=True)
class CampaignReport:
    """Everything a campaign produced: member reports plus the comparison.

    The embedded campaign is execution-normalized (serial/no workers), so
    the serialized report is byte-identical regardless of the backend the
    campaign ran on.
    """

    campaign: Campaign
    reports: tuple[RunReport, ...]
    comparison: Mapping[str, Any]
    comparison_text: str

    @property
    def text(self) -> str:
        """The full rendered study: every member artifact + the comparison."""
        sections = [
            f"=== {member.id} [{report.scenario.kind}] ===\n{report.text}"
            for member, report in zip(self.campaign.members, self.reports)
        ]
        sections.append(
            f"=== cross-scenario comparison ===\n{self.comparison_text}"
        )
        return "\n\n".join(sections)

    def report_for(self, member_id: str) -> RunReport:
        """The member report with the given id."""
        for member, report in zip(self.campaign.members, self.reports):
            if member.id == member_id:
                return report
        raise CampaignError(
            f"campaign {self.campaign.name!r} has no member {member_id!r}; "
            f"available: {[m.id for m in self.campaign.members]}"
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return versioned_payload(
            {
                "type": "campaign-report",
                "campaign": self.campaign.to_dict(),
                "reports": [report.to_dict() for report in self.reports],
                "comparison": dict(self.comparison),
                "comparison_text": self.comparison_text,
            }
        )

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def save(self, directory: str | Path) -> Path:
        """Persist the report as ``<directory>/<campaign name>.json``.

        Re-saving the same campaign's report overwrites (runs are
        deterministic); a target holding anything else raises
        :class:`CampaignError` instead of silently clobbering it.
        """
        return write_guarded_json(
            Path(directory) / f"{self.campaign.name}.json",
            self.to_json() + "\n",
            lambda existing: Campaign.from_dict(existing["campaign"]) == self.campaign,
            CampaignError,
            "campaign",
        )

    @staticmethod
    def load(path: str | Path) -> "CampaignReport":
        """Rebuild a report previously written by :meth:`save`."""
        try:
            payload = json.loads(Path(path).read_text())
        except json.JSONDecodeError as exc:
            raise CampaignError(
                f"campaign report {path} is not valid JSON: {exc}"
            ) from exc
        if not isinstance(payload, Mapping):
            raise CampaignError(
                f"campaign report {path} must hold a JSON object, "
                f"got {type(payload).__name__}"
            )
        try:
            data = migrate_payload(payload, "campaign report")
        except PayloadVersionError as exc:
            raise CampaignError(f"campaign report {path}: {exc}") from None
        type_tag = data.get("type", "campaign-report")
        _require(
            type_tag == "campaign-report",
            f"expected a 'campaign-report' payload, got type={type_tag!r}",
        )
        try:
            return CampaignReport(
                campaign=Campaign.from_dict(data["campaign"]),
                reports=tuple(
                    RunReport.from_dict(entry) for entry in data["reports"]
                ),
                comparison=data["comparison"],
                comparison_text=data["comparison_text"],
            )
        except KeyError as exc:
            raise CampaignError(
                f"campaign report {path} is missing key {exc}"
            ) from None


class CampaignRunner:
    """Facade executing campaigns over one shared executor pool.

    ``reuse_saved`` (opt-in) points at a directory of saved ``RunReport``
    JSONs (``RunReport.save`` output, or a previous campaign's
    ``--save``-ed member reports): members whose saved report digest
    already matches their resolved scenario are loaded instead of re-run,
    and only the cache misses fan over the pool.  Runs are deterministic
    and backend-independent, so a confirmed cache hit cannot change the
    report.

    >>> from repro.api import Campaign, CampaignRunner
    >>> campaign = Campaign.from_file("examples/campaigns/fig7-fig10-study.json")
    >>> report = CampaignRunner().run(campaign)
    >>> print(report.comparison_text)       # the cross-scenario table
    >>> report.save("results")              # one self-describing artifact
    """

    def __init__(self, reuse_saved: str | Path | None = None):
        self._reuse_saved = None if reuse_saved is None else Path(reuse_saved)

    def run(self, campaign: Campaign) -> CampaignReport:
        """Execute every member and assemble the :class:`CampaignReport`.

        Members fan over the campaign's executor/workers pool as
        independent tasks and are reassembled in member order, so the
        report is byte-identical for every backend and worker count.
        """
        scenarios = campaign.resolved_scenarios()
        reports: list[RunReport | None] = [None] * len(scenarios)
        if self._reuse_saved is not None:
            for index, scenario in enumerate(scenarios):
                reports[index] = _cached_member_report(self._reuse_saved, scenario)
        pending = [i for i, report in enumerate(reports) if report is None]
        if pending:
            backend = executor_by_name(campaign.executor, workers=campaign.workers)
            fresh = backend.map(_execute_scenario, [scenarios[i] for i in pending])
            if len(fresh) != len(pending):  # pragma: no cover - defensive
                raise RuntimeError(
                    f"executor {campaign.executor!r} returned {len(fresh)} "
                    f"reports for {len(pending)} scenarios"
                )
            for index, report in zip(pending, fresh):
                reports[index] = report
        comparison_text, comparison = build_comparison(
            [member.id for member in campaign.members],
            reports,
            campaign.comparison.metrics,
            baseline=campaign.comparison.baseline,
        )
        return CampaignReport(
            campaign=campaign.execution_normalized(),
            reports=tuple(reports),
            comparison=comparison,
            comparison_text=comparison_text,
        )


def run_campaign(
    campaign: Campaign, reuse_saved: str | Path | None = None
) -> CampaignReport:
    """Module-level convenience wrapper around :meth:`CampaignRunner.run`."""
    return CampaignRunner(reuse_saved=reuse_saved).run(campaign)
