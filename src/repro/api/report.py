"""Cross-scenario comparison reports.

A campaign runs heterogeneous scenarios — figure sweeps, network sweeps,
traces — whose ``RunReport.metrics`` payloads all differ in shape.  The
comparison layer flattens them onto one table: a *comparison metric* is a
named extractor that maps a metrics payload to ``{curve label: value}``
(or ``None`` when the metric does not apply to that payload type), and
:func:`build_comparison` tabulates the requested metrics across every
(scenario, curve) pair of a campaign via :mod:`repro.analysis.tables`.

Metrics live in the :data:`COMPARISON_METRICS` registry, so domain-specific
comparisons plug in the same way controllers and scenarios do:

>>> from repro.api import comparison_metric
>>> @comparison_metric("p95_acceptance")
... def _p95(metrics):
...     ...
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence

from ..analysis.tables import format_table
from ..registry import Registry

if TYPE_CHECKING:  # pragma: no cover
    from .runner import RunReport

__all__ = [
    "COMPARISON_METRICS",
    "comparison_metric",
    "build_comparison",
]

#: Extractor signature: metrics payload → ``{curve label: value}`` or
#: ``None`` when the metric does not apply to that payload type.
MetricExtractor = Callable[[Mapping[str, Any]], "dict[str, float] | None"]

COMPARISON_METRICS: Registry[MetricExtractor] = Registry("comparison metric")


def comparison_metric(name: str, *, replace: bool = False):
    """Decorator registering a comparison-metric extractor under ``name``."""
    return COMPARISON_METRICS.register(name, replace=replace)


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values)


def _per_curve(
    metrics: Mapping[str, Any],
    point_field: str,
    reduce: Callable[[Sequence[float]], float],
) -> dict[str, float]:
    """Reduce one point field of a curve-family payload, curve by curve."""
    return {
        curve["label"]: reduce([point[point_field] for point in curve["points"]])
        for curve in metrics["curves"]
    }


def _per_controller(metrics: Mapping[str, Any], field: str) -> dict[str, float]:
    """One value per controller of a network-integration payload."""
    return {
        name: numbers[field] for name, numbers in metrics["controllers"].items()
    }


def _acceptance(
    metrics: Mapping[str, Any], reduce: Callable[[Sequence[float]], float]
) -> dict[str, float] | None:
    kind = metrics.get("type")
    if kind in ("acceptance-sweep", "network-sweep"):
        return _per_curve(metrics, "acceptance_percentage", reduce)
    if kind == "network-integration":
        return _per_controller(metrics, "acceptance_percentage")
    if kind in ("trace-arrivals", "service-replay"):
        return {metrics["controller"]: metrics["acceptance_percentage"]}
    return None


@comparison_metric("mean_acceptance")
def _mean_acceptance(metrics: Mapping[str, Any]) -> dict[str, float] | None:
    """Acceptance percentage averaged over a curve's whole x axis."""
    return _acceptance(metrics, _mean)


@comparison_metric("final_acceptance")
def _final_acceptance(metrics: Mapping[str, Any]) -> dict[str, float] | None:
    """Acceptance percentage at the heaviest load point (last x value)."""
    return _acceptance(metrics, lambda series: series[-1])


def _network_quality(
    metrics: Mapping[str, Any], point_field: str, scalar_field: str
) -> dict[str, float] | None:
    kind = metrics.get("type")
    if kind == "network-sweep":
        return _per_curve(metrics, point_field, _mean)
    if kind == "network-integration":
        return _per_controller(metrics, scalar_field)
    return None


@comparison_metric("mean_blocking")
def _mean_blocking(metrics: Mapping[str, Any]) -> dict[str, float] | None:
    """Mean new-call blocking probability (network scenarios only)."""
    return _network_quality(metrics, "blocking_probability", "blocking_probability")


@comparison_metric("mean_dropping")
def _mean_dropping(metrics: Mapping[str, Any]) -> dict[str, float] | None:
    """Mean admitted-call dropping probability (network scenarios only)."""
    return _network_quality(metrics, "dropping_probability", "dropping_probability")


@comparison_metric("mean_handoff_failure")
def _mean_handoff_failure(metrics: Mapping[str, Any]) -> dict[str, float] | None:
    """Mean handoff failure ratio (network scenarios only)."""
    return _network_quality(metrics, "handoff_failure_ratio", "handoff_failure_ratio")


def _class_ratio(
    metrics: Mapping[str, Any],
    service: str,
    numerator: str,
    denominator: str,
) -> dict[str, float] | None:
    """Per-curve ratio-of-sums of two per-class counters.

    Reads the ``class.<service>.<counter>`` columns straight from the
    report's embedded frame payload, pooling rows by curve label —
    the exact ratio of totals, not a mean of per-run ratios.  Returns
    ``None`` when the report's workload carries no class counters (the
    legacy Poisson members), so mixed campaigns render ``-`` for them
    instead of dropping the scenario.
    """
    frame = metrics.get("frame")
    if not isinstance(frame, Mapping):
        return None
    if service not in (frame.get("class_names") or ()):
        return None
    columns = frame.get("columns") or {}
    numerators = columns.get(f"class.{service}.{numerator}")
    denominators = columns.get(f"class.{service}.{denominator}")
    label_codes = columns.get("label")
    vocab = frame.get("label_vocab")
    if numerators is None or denominators is None or label_codes is None:
        return None
    totals: dict[str, list[float]] = {}
    for code, num, den in zip(label_codes, numerators, denominators):
        if num is None or den is None:
            # NaN slots mark legacy rows concatenated into a workload frame.
            continue
        label = vocab[code]
        bucket = totals.setdefault(label, [0.0, 0.0])
        bucket[0] += num
        bucket[1] += den
    if not totals:
        return None
    return {
        label: (num / den if den > 0 else 0.0)
        for label, (num, den) in totals.items()
    }


def _register_class_metrics() -> None:
    """Register ``<service>_blocking``/``<service>_dropping`` extractors.

    One pair per preset service class (voice/data/video): blocking is
    blocked-over-requested, dropping is dropped-over-accepted, each a
    ratio of pooled per-class totals.
    """
    for service in ("voice", "data", "video"):

        def _blocking(
            metrics: Mapping[str, Any], _service: str = service
        ) -> dict[str, float] | None:
            return _class_ratio(metrics, _service, "blocked", "requested")

        def _dropping(
            metrics: Mapping[str, Any], _service: str = service
        ) -> dict[str, float] | None:
            return _class_ratio(metrics, _service, "dropped", "accepted")

        _blocking.__doc__ = (
            f"Per-class new-call blocking probability of the {service!r} "
            f"service (workload scenarios only)."
        )
        _dropping.__doc__ = (
            f"Per-class dropping probability of the {service!r} service "
            f"(workload scenarios only)."
        )
        COMPARISON_METRICS.register(f"{service}_blocking", _blocking)
        COMPARISON_METRICS.register(f"{service}_dropping", _dropping)


_register_class_metrics()


@comparison_metric("p99_latency_ms")
def _p99_latency_ms(metrics: Mapping[str, Any]) -> dict[str, float] | None:
    """p99 micro-batch decision latency (service scenarios only)."""
    if metrics.get("type") != "service-replay":
        return None
    return {metrics["controller"]: metrics["latency_ms"]["p99_ms"]}


@comparison_metric("throughput_dps")
def _throughput_dps(metrics: Mapping[str, Any]) -> dict[str, float] | None:
    """Sustained admission decisions per second (service scenarios only)."""
    if metrics.get("type") != "service-replay":
        return None
    return {metrics["controller"]: metrics["throughput_dps"]}


def _baseline_value(
    baseline_extracted: Mapping[str, "dict[str, float] | None"],
    metric: str,
    label: str,
) -> float | None:
    """The baseline's value of ``metric`` to delta ``label`` against.

    Matched by curve label; when the baseline produced exactly one curve,
    every label compares against it (the common "reference scenario"
    shape, e.g. a single-controller baseline against a controller sweep).
    """
    values = baseline_extracted.get(metric)
    if not values:
        return None
    if label in values:
        return values[label]
    if len(values) == 1:
        return next(iter(values.values()))
    return None


def build_comparison(
    member_ids: Sequence[str],
    reports: Sequence["RunReport"],
    metrics: Sequence[str],
    baseline: str | None = None,
) -> tuple[str, dict[str, Any]]:
    """Tabulate ``metrics`` across every (scenario, curve) of a campaign.

    Returns the rendered ASCII table and its machine-readable counterpart.
    A scenario a metric does not apply to shows ``-`` in the table and
    ``null`` in the payload — scenarios are never silently dropped from
    the comparison.

    With ``baseline`` (a member id), each metric gains a delta column
    ``Δ<metric>`` — the difference against the baseline member's value
    for the same curve label (or its only curve) — and every payload row
    gains a matching ``deltas`` mapping.  The baseline's own rows delta
    to ``0.0``.
    """
    extracted_by_member = [
        {name: COMPARISON_METRICS.get(name)(report.metrics) for name in metrics}
        for report in reports
    ]
    baseline_extracted: Mapping[str, Any] | None = None
    if baseline is not None:
        try:
            baseline_extracted = extracted_by_member[list(member_ids).index(baseline)]
        except ValueError:
            raise ValueError(
                f"comparison baseline {baseline!r} is not a member id; "
                f"members: {list(member_ids)}"
            ) from None

    rows_payload: list[dict[str, Any]] = []
    table_rows: list[list[object]] = []
    for member_id, extracted in zip(member_ids, extracted_by_member):
        labels: list[str] = []
        for name in metrics:
            for label in extracted[name] or ():
                if label not in labels:
                    labels.append(label)
        if not labels:
            row: dict[str, Any] = {
                "scenario": member_id,
                "curve": None,
                "values": {name: None for name in metrics},
            }
            if baseline_extracted is not None:
                row["deltas"] = {name: None for name in metrics}
            rows_payload.append(row)
            table_rows.append(
                [member_id, "-", *["-" for _ in metrics]]
                + (["-" for _ in metrics] if baseline_extracted is not None else [])
            )
            continue
        for label in labels:
            values = {
                name: (extracted[name] or {}).get(label) for name in metrics
            }
            row = {"scenario": member_id, "curve": label, "values": values}
            cells: list[object] = [
                member_id,
                label,
                *[value if value is not None else "-" for value in values.values()],
            ]
            if baseline_extracted is not None:
                deltas: dict[str, float | None] = {}
                for name in metrics:
                    value = values[name]
                    reference = _baseline_value(baseline_extracted, name, label)
                    deltas[name] = (
                        value - reference
                        if value is not None and reference is not None
                        else None
                    )
                row["deltas"] = deltas
                cells.extend(
                    delta if delta is not None else "-" for delta in deltas.values()
                )
            rows_payload.append(row)
            table_rows.append(cells)
    headers = ["Scenario", "Curve", *metrics]
    title = "Cross-scenario comparison"
    if baseline_extracted is not None:
        headers.extend(f"Δ{name}" for name in metrics)
        title = f"Cross-scenario comparison (Δ vs {baseline})"
    text = format_table(headers, table_rows, title=title)
    payload: dict[str, Any] = {"metrics": list(metrics), "rows": rows_payload}
    if baseline is not None:
        payload["baseline"] = baseline
    return text, payload
