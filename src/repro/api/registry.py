"""The API-level registries: controllers, figures, artifacts, ablations, scenarios.

Every name a :class:`~repro.api.scenario.Scenario` can reference — an
admission controller, a figure sweep, a static paper artifact, a control
surface, an ablation study or a whole experiment id — resolves through one
of the registries below.  Together with the engine registry
(:data:`repro.fuzzy.ENGINES`) and the executor registry
(:data:`repro.simulation.EXECUTORS`) they replace the string literals that
used to be duplicated across the CLI, ``FACSConfig`` and the experiment
dispatch ladder.

Registering a new controller makes it addressable from scenario JSON
immediately:

>>> from repro.api import register_controller
>>> @register_controller("AlwaysAccept")
... def _always_accept(engine="compiled"):
...     return MyControllerFactory()
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from ..cac.adaptive_threshold import AdaptiveThresholdController
from ..cac.complete_sharing import CompleteSharingController
from ..cac.facs.system import FACSConfig
from ..cac.guard_channel import GuardChannelController
from ..cac.mpc_lookahead import MPCLookaheadController
from ..cac.threshold_policy import ThresholdPolicyController
from ..experiments.ablations import (
    baseline_ablation,
    defuzzifier_ablation,
    threshold_ablation,
)
from ..experiments.fig7_speed import render_figure7, reproduce_figure7
from ..experiments.fig8_angle import render_figure8, reproduce_figure8
from ..experiments.fig9_distance import render_figure9, reproduce_figure9
from ..experiments.fig10_facs_vs_scc import render_figure10, reproduce_figure10
from ..experiments.surfaces import (
    flc1_surface_grid,
    flc2_surface_grid,
    render_flc1_grid,
    render_flc2_grid,
)
from ..experiments.tables import (
    render_flc1_memberships,
    render_flc2_memberships,
    render_frb1,
    render_frb2,
)
from ..registry import Registry
from ..simulation.engine import ControllerFactory
from ..simulation.scenario import facs_factory, scc_factory

if TYPE_CHECKING:  # pragma: no cover
    from .scenario import Scenario

__all__ = [
    "CONTROLLERS",
    "FIGURES",
    "ARTIFACTS",
    "SURFACES",
    "ABLATIONS",
    "SCENARIOS",
    "FigureDef",
    "SurfaceDef",
    "register_controller",
    "register_scenario",
    "controller_factory",
    "definition_controller_factory",
    "is_definition_controller",
    "DEFINITION_CONTROLLER_SUFFIX",
    "scenario_for",
    "scenario_ids",
    "DEFAULT_NETWORK_CONTROLLERS",
    "BENCH_ONLY_EXPERIMENTS",
]

# ----------------------------------------------------------------------
# Controllers
# ----------------------------------------------------------------------
#: Builder signature: ``(engine: str) -> ControllerFactory``.  The engine
#: selects the fuzzy inference fast path for controllers that run one
#: (FACS); non-fuzzy controllers ignore it.
ControllerBuilder = Callable[..., ControllerFactory]

CONTROLLERS: Registry[ControllerBuilder] = Registry("controller")

#: Default curve set of the multi-cell network sweep (registration order of
#: the paper's Section 4 comparison).
DEFAULT_NETWORK_CONTROLLERS: tuple[str, ...] = ("FACS", "SCC", "CS")


def register_controller(name: str, *, replace: bool = False):
    """Decorator registering a controller builder under ``name``.

    The builder receives ``engine=<name>`` and must return a picklable
    zero-argument controller factory (see
    :mod:`repro.simulation.scenario`).
    """
    return CONTROLLERS.register(name, replace=replace)


#: Suffix marking a controller id as a definition file rather than a
#: registered name.  ``examples/controllers/flc1.json`` is a valid
#: controller id everywhere a registered name is (Scenario, Campaign, CLI).
DEFINITION_CONTROLLER_SUFFIX = ".json"


def is_definition_controller(name: str) -> bool:
    """True when ``name`` addresses an FLC-definition file, not a registry key."""
    return (
        name.endswith(DEFINITION_CONTROLLER_SUFFIX) and name not in CONTROLLERS
    )


def definition_controller_factory(
    path: str, engine: str = "compiled"
) -> ControllerFactory:
    """FACS factory for a standalone FLC-definition JSON file.

    The file holds one stage of the two-stage FACS pipeline; which stage is
    recognised from its variable names (``S/A/D → Cv`` fills the FLC1 slot,
    ``Cv/R/Cs → AR`` the FLC2 slot) and the other stage keeps the paper's
    built-in controller.
    """
    from ..analysis.io import read_flc_definition_json
    from ..cac.facs.definitions import FLC1_VARIABLES, FLC2_VARIABLES
    from ..fuzzy.definition import DefinitionError

    definition = read_flc_definition_json(path)
    signature = (definition.input_names(), definition.output_names())
    if signature == FLC1_VARIABLES:
        config = FACSConfig(engine=engine, flc1_definition=definition)
    elif signature == FLC2_VARIABLES:
        config = FACSConfig(engine=engine, flc2_definition=definition)
    else:
        raise DefinitionError(
            f"controller definition {path} fits neither FACS slot: "
            f"FLC1 needs {FLC1_VARIABLES[0]} -> {FLC1_VARIABLES[1]}, "
            f"FLC2 needs {FLC2_VARIABLES[0]} -> {FLC2_VARIABLES[1]}, "
            f"got {signature[0]} -> {signature[1]}"
        )
    return facs_factory(config)


def controller_factory(name: str, engine: str = "compiled") -> ControllerFactory:
    """Resolve a controller id into a fresh-instance factory.

    ``name`` is either a registered controller name or the path of an
    FLC-definition JSON file (any id ending in ``.json``).
    """
    if is_definition_controller(name):
        return definition_controller_factory(name, engine=engine)
    return CONTROLLERS.get(name)(engine=engine)


@register_controller("FACS")
def _facs_controller(engine: str = "compiled") -> ControllerFactory:
    return facs_factory(FACSConfig(engine=engine))


@register_controller("SCC")
def _scc_controller(engine: str = "compiled") -> ControllerFactory:
    return scc_factory()


@register_controller("CS")
def _complete_sharing_controller(engine: str = "compiled") -> ControllerFactory:
    return CompleteSharingController


@register_controller("GuardChannel")
def _guard_channel_controller(engine: str = "compiled") -> ControllerFactory:
    return GuardChannelController


@register_controller("Threshold")
def _threshold_controller(engine: str = "compiled") -> ControllerFactory:
    return ThresholdPolicyController


@register_controller("AdaptiveThreshold")
def _adaptive_threshold_controller(engine: str = "compiled") -> ControllerFactory:
    return AdaptiveThresholdController


@register_controller("MPCLookahead")
def _mpc_lookahead_controller(engine: str = "compiled") -> ControllerFactory:
    return MPCLookaheadController


# ----------------------------------------------------------------------
# Figure sweeps, static artifacts, surfaces, ablations
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FigureDef:
    """How to reproduce and render one acceptance-vs-requests figure.

    A scenario seed of ``None`` simply omits the ``seed`` kwarg, so each
    ``reproduce`` function's own default (the figure's canonical seed)
    applies.
    """

    reproduce: Callable[..., object]
    render: Callable[[object], str]
    #: Keyword of ``reproduce`` holding the per-curve values (speeds,
    #: angles, distances); ``None`` for figures with a fixed curve set.
    curve_kwarg: str | None


FIGURES: Registry[FigureDef] = Registry("figure")
FIGURES.register("fig7-speed", FigureDef(reproduce_figure7, render_figure7, "speeds_kmh"))
FIGURES.register("fig8-angle", FigureDef(reproduce_figure8, render_figure8, "angles_deg"))
FIGURES.register(
    "fig9-distance", FigureDef(reproduce_figure9, render_figure9, "distances_km")
)
FIGURES.register(
    "fig10-facs-vs-scc", FigureDef(reproduce_figure10, render_figure10, None)
)

#: Static paper artifacts: experiment id → zero-argument renderer.
ARTIFACTS: Registry[Callable[[], str]] = Registry("artifact")
ARTIFACTS.register("table1-frb1", render_frb1)
ARTIFACTS.register("table2-frb2", render_frb2)
ARTIFACTS.register("fig5-flc1-mf", render_flc1_memberships)
ARTIFACTS.register("fig6-flc2-mf", render_flc2_memberships)


@dataclass(frozen=True)
class SurfaceDef:
    """How to compute and render one control surface.

    ``render_grid`` draws a grid ``grid`` already produced, so one run
    evaluates the surface exactly once.
    """

    grid: Callable[..., tuple[list[float], list[float], list[list[float]]]]
    render_grid: Callable[..., str]
    #: Keyword naming the fixed third input of the surface.
    fixed_kwarg: str
    default_fixed: float


SURFACES: Registry[SurfaceDef] = Registry("surface")
SURFACES.register(
    "flc1", SurfaceDef(flc1_surface_grid, render_flc1_grid, "distance_km", 3.0)
)
SURFACES.register(
    "flc2", SurfaceDef(flc2_surface_grid, render_flc2_grid, "request_bu", 5.0)
)

#: Ablation studies: short name → reproduce function returning a SweepResult.
ABLATIONS: Registry[Callable[..., object]] = Registry("ablation")
ABLATIONS.register("defuzz", defuzzifier_ablation)
ABLATIONS.register("threshold", threshold_ablation)
ABLATIONS.register("baselines", baseline_ablation)


# ----------------------------------------------------------------------
# Scenarios (experiment id → canonical default Scenario)
# ----------------------------------------------------------------------
#: Experiment id → zero-argument factory of the canonical default
#: :class:`~repro.api.scenario.Scenario` for that paper artifact.  The
#: built-in factories are registered in :mod:`repro.api.scenario`, one per
#: entry of ``python -m repro list``.
SCENARIOS: Registry[Callable[[], "Scenario"]] = Registry("scenario")

#: Experiments the CLI refuses to `run` directly (their full-fidelity form
#: is a benchmark); they remain runnable through :class:`repro.api.Runner`.
BENCH_ONLY_EXPERIMENTS = frozenset(
    {"abl-defuzz", "abl-threshold", "abl-baselines", "net-integration"}
)


def register_scenario(experiment_id: str, *, replace: bool = False):
    """Decorator registering a default-scenario factory for an experiment id."""
    return SCENARIOS.register(experiment_id, replace=replace)


def scenario_for(experiment_id: str) -> "Scenario":
    """The canonical default scenario reproducing ``experiment_id``."""
    return SCENARIOS.get(experiment_id)()


def scenario_ids() -> tuple[str, ...]:
    """All experiment ids with a registered scenario, in registration order."""
    return SCENARIOS.names()
