"""Declarative, serializable experiment scenarios.

A :class:`Scenario` is a frozen dataclass describing *everything* needed to
reproduce one experiment — workload, topology, controllers, engine,
executor, seeds and replications — with no behaviour attached.  Scenarios
round-trip losslessly through ``to_dict``/``from_dict`` (and JSON), so an
experiment can live in a config file, travel over a queue, or be archived
next to its results.  :class:`repro.api.Runner` turns a scenario into a
:class:`repro.api.RunReport`.

Each concrete scenario kind is registered in :data:`SCENARIO_KINDS` under
its ``kind`` discriminator; ``Scenario.from_dict`` dispatches on that key
and rejects unknown kinds and unknown fields loudly.
"""

from __future__ import annotations

import dataclasses
import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Any, ClassVar, Mapping

from ..analysis.io import PayloadVersionError, migrate_payload, versioned_payload
from ..fuzzy.controller import ENGINES
from ..registry import Registry, RegistryError
from ..cellular.network import hex_cell_count
from ..simulation.config import PAPER_REQUEST_COUNTS
from ..simulation.executor import EXECUTORS
from ..simulation.sweep import PAPER_NETWORK_ARRIVAL_RATES
from ..fuzzy.definition import DefinitionError
from ..tuning.space import ParameterSpec, SearchSpace, TuningError
from ..tuning.strategies import STRATEGIES
from ..workloads import WORKLOADS
from .report import COMPARISON_METRICS
from .registry import (
    ABLATIONS,
    ARTIFACTS,
    CONTROLLERS,
    DEFAULT_NETWORK_CONTROLLERS,
    FIGURES,
    SURFACES,
    is_definition_controller,
    register_scenario,
)

__all__ = [
    "Scenario",
    "ScenarioError",
    "SCENARIO_KINDS",
    "scenario_kind",
    "ArtifactScenario",
    "SurfaceScenario",
    "FigureSweepScenario",
    "NetworkSweepScenario",
    "ShardedNetworkSweepScenario",
    "CoupledShardedNetworkSweepScenario",
    "AblationScenario",
    "NetworkIntegrationScenario",
    "TraceArrivalsScenario",
    "ServiceReplayScenario",
    "TuningScenario",
]


class ScenarioError(ValueError):
    """Raised when a scenario is invalid or a payload cannot be decoded."""


#: ``kind`` discriminator → concrete scenario class.
SCENARIO_KINDS: Registry[type] = Registry("scenario kind")


def scenario_kind(name: str):
    """Class decorator registering a scenario class under its ``kind``."""

    def decorator(cls: type) -> type:
        cls.kind = name
        SCENARIO_KINDS.register(name, cls)
        return cls

    return decorator


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ScenarioError(message)


def _check_int(value: object, what: str, minimum: int) -> None:
    _require(
        isinstance(value, int) and not isinstance(value, bool) and value >= minimum,
        f"{what} must be an integer >= {minimum}, got {value!r}",
    )


def _check_optional_int(value: object, what: str, minimum: int) -> None:
    if value is not None:
        _check_int(value, what, minimum)


def _check_seed(seed: object) -> None:
    _require(
        seed is None or (isinstance(seed, int) and not isinstance(seed, bool)),
        f"seed must be an integer or null, got {seed!r}",
    )


def _check_engine(engine: str) -> None:
    _require(
        engine in ENGINES,
        f"unknown engine {engine!r}; available: {list(ENGINES)}",
    )


def _check_executor(executor: str, workers: int | None) -> None:
    _require(
        executor in EXECUTORS,
        f"unknown executor {executor!r}; available: {list(EXECUTORS)}",
    )
    _check_optional_int(workers, "workers", 1)
    if workers is not None:
        _require(
            executor != "serial",
            "workers requires a pool executor (process or thread)",
        )


def _check_controllers(controllers: tuple[str, ...]) -> None:
    _require(len(controllers) > 0, "at least one controller is required")
    duplicates = sorted({c for c in controllers if controllers.count(c) > 1})
    _require(not duplicates, f"duplicate controllers: {', '.join(duplicates)}")
    for name in controllers:
        if is_definition_controller(name):
            # A definition-file id: existence is checked here so a typo'd
            # path fails at scenario validation, not mid-run; the payload
            # itself is parsed when the controller factory resolves.
            _require(
                Path(name).is_file(),
                f"controller definition file not found: {name!r}",
            )
            continue
        _require(
            name in CONTROLLERS,
            f"unknown controller {name!r}; available: {list(CONTROLLERS)} "
            f"or a path to an FLC-definition JSON file",
        )


def _check_workload(workload: str | None) -> None:
    if workload is None:
        return
    _require(
        isinstance(workload, str) and bool(workload),
        f"workload must be a registered name, a .json path or null, "
        f"got {workload!r}",
    )
    if workload.endswith(".json"):
        _require(
            Path(workload).is_file(),
            f"workload definition file not found: {workload!r}",
        )
        return
    _require(
        workload in WORKLOADS,
        f"unknown workload {workload!r}; available: {list(WORKLOADS)} "
        f"or a path to a workload-definition JSON file",
    )


def _normalize_workload(scenario: "Scenario") -> None:
    """Validate ``scenario.workload`` and fold ``"poisson"`` to ``None``.

    The registered ``"poisson"`` workload reproduces the legacy arrival
    draws bit for bit, so the two spellings are one scenario identity —
    normalising here keeps default payloads, report stems and overwrite
    guards byte-identical to the pre-workload schema.
    """
    _check_workload(scenario.workload)
    if scenario.workload == "poisson":
        object.__setattr__(scenario, "workload", None)


def _check_finite(value: float, what: str) -> None:
    _require(
        isinstance(value, (int, float)) and math.isfinite(value),
        f"{what} must be a finite number, got {value!r}",
    )


def _as_tuple(value: Any) -> Any:
    return tuple(value) if isinstance(value, (list, tuple)) else value


@dataclass(frozen=True)
class Scenario:
    """Base class of every declarative experiment description."""

    #: Discriminator stamped into every serialized payload.
    kind: ClassVar[str] = ""

    #: Field names dropped from payloads while equal to ``None``.  Fields
    #: added to existing kinds after their schema froze live here, so
    #: default payloads stay byte-identical to the pre-extension schema
    #: (``from_dict`` fills absent fields from the dataclass defaults).
    _OMIT_WHEN_NONE: ClassVar[frozenset[str]] = frozenset()

    #: Same byte-stability contract for boolean opt-ins: dropped from
    #: payloads while equal to ``False``.
    _OMIT_WHEN_FALSE: ClassVar[frozenset[str]] = frozenset()

    # ------------------------------------------------------------------
    @property
    def slug(self) -> str:
        """Filesystem-friendly identifier used for saved reports."""
        return self.kind

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON dict form (tuples become lists, ``None`` stays null).

        Payloads are stamped with the current ``schema_version`` (see
        :mod:`repro.analysis.io` for the versioning policy); ``from_dict``
        migrates older versions and rejects unknown ones.
        """
        payload: dict[str, Any] = {"kind": self.kind}
        for spec in dataclasses.fields(self):
            value = getattr(self, spec.name)
            if value is None and spec.name in self._OMIT_WHEN_NONE:
                continue
            if value is False and spec.name in self._OMIT_WHEN_FALSE:
                continue
            payload[spec.name] = list(value) if isinstance(value, tuple) else value
        return versioned_payload(payload)

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    # ------------------------------------------------------------------
    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "Scenario":
        """Decode a scenario payload, dispatching on its ``kind``.

        Unknown kinds, unknown fields and invalid values all raise
        :class:`ScenarioError` with the offending names spelled out.
        """
        if not isinstance(payload, Mapping):
            raise ScenarioError(
                f"scenario payload must be a mapping, got {type(payload).__name__}"
            )
        try:
            data = migrate_payload(payload, "scenario")
        except PayloadVersionError as exc:
            raise ScenarioError(str(exc)) from None
        kind = data.pop("kind", None)
        if kind is None:
            raise ScenarioError(
                f"scenario payload needs a 'kind' key; known kinds: {list(SCENARIO_KINDS)}"
            )
        try:
            cls = SCENARIO_KINDS.get(kind)
        except RegistryError as exc:
            raise ScenarioError(str(exc)) from None
        known = {spec.name for spec in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ScenarioError(
                f"unknown field(s) for scenario kind {kind!r}: {unknown}; "
                f"expected a subset of {sorted(known)}"
            )
        kwargs = {name: _as_tuple(value) for name, value in data.items()}
        try:
            return cls(**kwargs)
        except (TypeError, ValueError) as exc:
            raise ScenarioError(f"invalid {kind!r} scenario: {exc}") from exc

    @staticmethod
    def from_json(text: str) -> "Scenario":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioError(f"scenario JSON does not parse: {exc}") from exc
        return Scenario.from_dict(payload)

    @staticmethod
    def from_file(path: str | Path) -> "Scenario":
        return Scenario.from_json(Path(path).read_text())


# ----------------------------------------------------------------------
# Concrete kinds
# ----------------------------------------------------------------------
@scenario_kind("artifact")
@dataclass(frozen=True)
class ArtifactScenario(Scenario):
    """A static paper artifact (rule tables, membership-function figures)."""

    artifact: str

    def __post_init__(self) -> None:
        _require(
            self.artifact in ARTIFACTS,
            f"unknown artifact {self.artifact!r}; available: {list(ARTIFACTS)}",
        )

    @property
    def slug(self) -> str:
        return self.artifact


@scenario_kind("surface")
@dataclass(frozen=True)
class SurfaceScenario(Scenario):
    """A control-surface rendering of FLC1 or FLC2.

    ``fixed_value`` pins the surface's third input (FLC1: the user-to-BS
    distance in km, FLC2: the requested bandwidth in BU); ``None`` uses the
    registered default.
    """

    surface: str
    resolution: int = 31
    fixed_value: float | None = None
    engine: str = "compiled"

    def __post_init__(self) -> None:
        _require(
            self.surface in SURFACES,
            f"unknown surface {self.surface!r}; available: {list(SURFACES)}",
        )
        _require(
            isinstance(self.resolution, int) and self.resolution >= 2,
            f"resolution must be an integer >= 2, got {self.resolution!r}",
        )
        if self.fixed_value is not None:
            _check_finite(self.fixed_value, "fixed_value")
        _check_engine(self.engine)

    @property
    def slug(self) -> str:
        return f"surface-{self.surface}"


@scenario_kind("figure-sweep")
@dataclass(frozen=True)
class FigureSweepScenario(Scenario):
    """One of the paper's acceptance-vs-requests figures (Figs. 7–10).

    ``curve_values`` overrides the per-curve parameter of Figs. 7–9 (the
    fixed speeds, angles or distances); Fig. 10 compares FACS vs SCC and
    accepts no curve values.  ``seed`` of ``None`` keeps the figure's
    canonical seed so default scenarios reproduce the paper artifacts.
    ``workload`` names a registered arrival-process workload (or a
    workload-definition ``*.json``); ``None``/``"poisson"`` keeps the
    paper's Poisson arrivals draw for draw.
    """

    figure: str
    request_counts: tuple[int, ...] = PAPER_REQUEST_COUNTS
    replications: int = 10
    seed: int | None = None
    curve_values: tuple[float, ...] | None = None
    engine: str = "compiled"
    executor: str = "serial"
    workers: int | None = None
    workload: str | None = None

    _OMIT_WHEN_NONE: ClassVar[frozenset[str]] = frozenset({"workload"})

    def __post_init__(self) -> None:
        _normalize_workload(self)
        object.__setattr__(self, "request_counts", tuple(self.request_counts))
        if self.curve_values is not None:
            object.__setattr__(self, "curve_values", tuple(self.curve_values))
        _require(
            self.figure in FIGURES,
            f"unknown figure {self.figure!r}; available: {list(FIGURES)}",
        )
        _require(
            len(self.request_counts) > 0, "at least one request count is required"
        )
        for count in self.request_counts:
            _require(
                isinstance(count, int) and count >= 0,
                f"request counts must be non-negative integers, got {count!r}",
            )
        _check_int(self.replications, "replications", 1)
        _check_seed(self.seed)
        if self.curve_values is not None:
            _require(
                FIGURES.get(self.figure).curve_kwarg is not None,
                f"figure {self.figure!r} has a fixed curve set and accepts no "
                f"curve_values",
            )
            _require(
                len(self.curve_values) > 0, "curve_values must not be empty"
            )
            for value in self.curve_values:
                _check_finite(value, "curve values")
        _check_engine(self.engine)
        _check_executor(self.executor, self.workers)

    @property
    def slug(self) -> str:
        return self.figure


@scenario_kind("network-sweep")
@dataclass(frozen=True)
class NetworkSweepScenario(Scenario):
    """The multi-cell QoS sweep: controllers × arrival rates × replications.

    Defaults mirror ``DEFAULT_NETWORK_BASE_CONFIG`` — the canonical 7-cell
    topology of the Section 4 QoS claim.  ``workload`` names a registered
    arrival-process workload (``mmpp``, ``flash-crowd``, …) or a
    workload-definition ``*.json``; ``None``/``"poisson"`` keeps the
    paper's Poisson arrivals draw for draw.
    """

    controllers: tuple[str, ...] = DEFAULT_NETWORK_CONTROLLERS
    arrival_rates: tuple[float, ...] = PAPER_NETWORK_ARRIVAL_RATES
    replications: int = 5
    duration_s: float = 1200.0
    rings: int = 1
    cell_radius_km: float = 1.5
    mean_speed_kmh: float = 60.0
    seed: int = 20070627
    engine: str = "compiled"
    executor: str = "serial"
    workers: int | None = None
    workload: str | None = None

    _OMIT_WHEN_NONE: ClassVar[frozenset[str]] = frozenset({"workload"})

    def __post_init__(self) -> None:
        _normalize_workload(self)
        object.__setattr__(self, "controllers", tuple(self.controllers))
        object.__setattr__(self, "arrival_rates", tuple(self.arrival_rates))
        _check_controllers(self.controllers)
        _require(
            len(self.arrival_rates) > 0, "at least one arrival rate is required"
        )
        for rate in self.arrival_rates:
            _check_finite(rate, "arrival rates")
            _require(rate > 0, f"arrival rates must be positive, got {rate}")
        _check_int(self.replications, "replications", 1)
        _check_finite(self.duration_s, "duration_s")
        _require(self.duration_s > 0, f"duration_s must be positive, got {self.duration_s}")
        _require(
            isinstance(self.rings, int) and self.rings >= 0,
            f"rings must be a non-negative integer, got {self.rings!r}",
        )
        _check_finite(self.cell_radius_km, "cell_radius_km")
        _require(
            self.cell_radius_km > 0,
            f"cell_radius_km must be positive, got {self.cell_radius_km}",
        )
        _check_finite(self.mean_speed_kmh, "mean_speed_kmh")
        _require(
            self.mean_speed_kmh >= 0,
            f"mean_speed_kmh must be non-negative, got {self.mean_speed_kmh}",
        )
        _require(
            isinstance(self.seed, int) and not isinstance(self.seed, bool),
            f"seed must be an integer, got {self.seed!r}",
        )
        _check_engine(self.engine)
        _check_executor(self.executor, self.workers)

    @property
    def slug(self) -> str:
        return "net-sweep"


@scenario_kind("network-sweep-sharded")
@dataclass(frozen=True)
class ShardedNetworkSweepScenario(NetworkSweepScenario):
    """Per-cell sharded variant of the multi-cell QoS sweep.

    Instead of one coupled ``rings``-ring simulation per replication, every
    cell of the topology runs as an *independent* single-cell simulation
    (its own arrival stream, mobility and admission controller), and the
    per-cell outputs are pooled into the point statistics.  The trade is
    explicit: inter-cell handoff coupling is dropped, but the work
    decomposes into ``cells x replications`` smaller tasks that fan over
    the same executor backends — the scale-out path for large topologies
    where a single coupled run is the bottleneck.  Cell 0 keeps the base
    seed, so a ``rings=0`` sharded sweep reproduces the coupled sweep's
    curves point for point (the result name carries a ``-sharded``
    suffix).
    """

    @property
    def slug(self) -> str:
        return "net-sweep-sharded"


@scenario_kind("network-sweep-coupled-sharded")
@dataclass(frozen=True)
class CoupledShardedNetworkSweepScenario(NetworkSweepScenario):
    """Message-passing sharded variant of the multi-cell QoS sweep.

    Keeps the handoff coupling the independent-cell sharding drops: every
    cell of the topology runs as its own shard worker and departing calls
    travel between shards as explicit handoff messages, drained in a
    canonical order at conservative time-window barriers.  ``executor``
    here selects the backend the *shards* run on within each replication
    (serial / thread / process), not a replication pool; results are
    byte-identical for every backend and worker count.  ``window_s``
    overrides the barrier interval (default: the mobility update
    interval); ``cell_capacities`` optionally gives every cell its own
    capacity in spiral (cell-id) order.
    """

    window_s: float | None = None
    cell_capacities: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.window_s is not None:
            _check_finite(self.window_s, "window_s")
            _require(
                self.window_s > 0, f"window_s must be positive, got {self.window_s}"
            )
        if self.cell_capacities is not None:
            object.__setattr__(self, "cell_capacities", tuple(self.cell_capacities))
            expected = hex_cell_count(self.rings)
            _require(
                len(self.cell_capacities) == expected,
                f"cell_capacities must list one capacity per cell "
                f"({expected} for rings={self.rings}), got {len(self.cell_capacities)}",
            )
            for capacity in self.cell_capacities:
                _require(
                    isinstance(capacity, int)
                    and not isinstance(capacity, bool)
                    and capacity > 0,
                    f"cell capacities must be positive integers, got {capacity!r}",
                )

    @property
    def slug(self) -> str:
        return "net-sweep-coupled-sharded"


@scenario_kind("ablation")
@dataclass(frozen=True)
class AblationScenario(Scenario):
    """One of the sensitivity ablations (not in the paper).

    ``request_counts`` of ``None`` keeps the ablation's canonical x axis.
    """

    ablation: str
    request_counts: tuple[int, ...] | None = None
    replications: int = 5
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.request_counts is not None:
            object.__setattr__(self, "request_counts", tuple(self.request_counts))
        _require(
            self.ablation in ABLATIONS,
            f"unknown ablation {self.ablation!r}; available: {list(ABLATIONS)}",
        )
        if self.request_counts is not None:
            _require(
                len(self.request_counts) > 0,
                "at least one request count is required",
            )
            for count in self.request_counts:
                _require(
                    isinstance(count, int) and count >= 0,
                    f"request counts must be non-negative integers, got {count!r}",
                )
        _check_int(self.replications, "replications", 1)
        _check_seed(self.seed)

    @property
    def slug(self) -> str:
        return f"abl-{self.ablation}"


@scenario_kind("network-integration")
@dataclass(frozen=True)
class NetworkIntegrationScenario(Scenario):
    """One multi-cell integration run per controller (handoffs, dropping)."""

    controllers: tuple[str, ...] = ("FACS", "SCC")
    arrival_rate_per_cell_per_s: float = 0.02
    duration_s: float = 3600.0
    rings: int = 1
    cell_radius_km: float = 2.0
    mean_speed_kmh: float = 40.0
    seed: int = 20070626
    engine: str = "compiled"

    def __post_init__(self) -> None:
        object.__setattr__(self, "controllers", tuple(self.controllers))
        _check_controllers(self.controllers)
        _check_finite(self.arrival_rate_per_cell_per_s, "arrival_rate_per_cell_per_s")
        _require(
            self.arrival_rate_per_cell_per_s > 0,
            f"arrival_rate_per_cell_per_s must be positive, "
            f"got {self.arrival_rate_per_cell_per_s}",
        )
        _check_finite(self.duration_s, "duration_s")
        _require(self.duration_s > 0, f"duration_s must be positive, got {self.duration_s}")
        _require(
            isinstance(self.rings, int) and self.rings >= 0,
            f"rings must be a non-negative integer, got {self.rings!r}",
        )
        _check_finite(self.cell_radius_km, "cell_radius_km")
        _require(
            self.cell_radius_km > 0,
            f"cell_radius_km must be positive, got {self.cell_radius_km}",
        )
        _check_finite(self.mean_speed_kmh, "mean_speed_kmh")
        _require(
            self.mean_speed_kmh >= 0,
            f"mean_speed_kmh must be non-negative, got {self.mean_speed_kmh}",
        )
        _require(
            isinstance(self.seed, int) and not isinstance(self.seed, bool),
            f"seed must be an integer, got {self.seed!r}",
        )
        _check_engine(self.engine)

    @property
    def slug(self) -> str:
        return "net-integration"


@scenario_kind("trace-arrivals")
@dataclass(frozen=True)
class TraceArrivalsScenario(Scenario):
    """An offline, trace-driven request stream through ``decide_batch``.

    The full arrival trace (times, service classes, GPS observations,
    holding times) is materialized up front from the seed, then streamed
    through the FACS controller in batches of ``batch_size`` via the
    vectorized :meth:`~repro.cac.facs.system.FuzzyAdmissionControlSystem.decide_batch`
    admission path — the headless pipeline for replaying recorded
    workloads.  Optional ``speed_kmh``/``angle_deg``/``distance_km`` pin
    the corresponding GPS attribute for every request (``None`` draws it
    from the paper's ranges, as in the figure sweeps).

    ``stream=True`` selects the frame-native columnar fast path: the
    trace never materializes per-request ``Call`` objects and whole
    batches are scored through the certified decision screen.  Results
    are byte-identical to the object path (that equivalence is gated by
    ``benchmarks/bench_trace_scale.py``), so the flag only trades wall
    clock — use it for million-request traces.
    """

    request_count: int = 200
    batch_size: int = 16
    arrival_window_s: float = 2000.0
    speed_kmh: float | None = None
    angle_deg: float | None = None
    distance_km: float | None = None
    seed: int = 20070625
    engine: str = "compiled"
    workload: str | None = None
    stream: bool = False

    _OMIT_WHEN_NONE: ClassVar[frozenset[str]] = frozenset({"workload"})
    _OMIT_WHEN_FALSE: ClassVar[frozenset[str]] = frozenset({"stream"})

    def __post_init__(self) -> None:
        _normalize_workload(self)
        _check_int(self.request_count, "request_count", 1)
        _check_int(self.batch_size, "batch_size", 1)
        _require(
            isinstance(self.stream, bool),
            f"stream must be a boolean, got {self.stream!r}",
        )
        _check_finite(self.arrival_window_s, "arrival_window_s")
        _require(
            self.arrival_window_s > 0,
            f"arrival_window_s must be positive, got {self.arrival_window_s}",
        )
        for name in ("speed_kmh", "angle_deg", "distance_km"):
            value = getattr(self, name)
            if value is not None:
                _check_finite(value, name)
        _require(
            isinstance(self.seed, int) and not isinstance(self.seed, bool),
            f"seed must be an integer, got {self.seed!r}",
        )
        _check_engine(self.engine)

    @property
    def slug(self) -> str:
        return "trace-arrivals"


@scenario_kind("service-replay")
@dataclass(frozen=True)
class ServiceReplayScenario(Scenario):
    """A seeded arrival trace through the online admission service.

    The same workload vocabulary as :class:`TraceArrivalsScenario`, but
    executed by the asyncio micro-batching server
    (:mod:`repro.service`) on a virtual clock: one submitter task per
    request sleeps until its arrival instant, the server coalesces
    pending requests into micro-batches (flush on ``max_batch`` or
    ``max_wait_ms``, whichever first) and sheds beyond
    ``queue_capacity``.  Replay is deterministic — same scenario ⇒
    byte-identical service report, independent of asyncio scheduling
    order — which is what lets an *online* code path live under the same
    reproducibility gates as the offline pipelines.
    """

    request_count: int = 400
    arrival_window_s: float = 120.0
    max_batch: int = 8
    max_wait_ms: float = 2000.0
    queue_capacity: int = 64
    speed_kmh: float | None = None
    angle_deg: float | None = None
    distance_km: float | None = None
    seed: int = 20070628
    engine: str = "compiled"
    workload: str | None = None

    _OMIT_WHEN_NONE: ClassVar[frozenset[str]] = frozenset({"workload"})

    def __post_init__(self) -> None:
        _normalize_workload(self)
        _check_int(self.request_count, "request_count", 1)
        _check_finite(self.arrival_window_s, "arrival_window_s")
        _require(
            self.arrival_window_s > 0,
            f"arrival_window_s must be positive, got {self.arrival_window_s}",
        )
        _check_int(self.max_batch, "max_batch", 1)
        _check_finite(self.max_wait_ms, "max_wait_ms")
        _require(
            self.max_wait_ms > 0,
            f"max_wait_ms must be positive, got {self.max_wait_ms}",
        )
        _check_int(self.queue_capacity, "queue_capacity", 1)
        for name in ("speed_kmh", "angle_deg", "distance_km"):
            value = getattr(self, name)
            if value is not None:
                _check_finite(value, name)
        _require(
            isinstance(self.seed, int) and not isinstance(self.seed, bool),
            f"seed must be an integer, got {self.seed!r}",
        )
        _check_engine(self.engine)

    @property
    def slug(self) -> str:
        return "service-replay"


#: Tiny default search space: two candidate peaks for FLC1's *Middle*
#: speed triangle — enough for a smoke-test `repro tune` with no config.
DEFAULT_TUNING_PARAMETERS = (
    ParameterSpec("mf.S.M.1", choices=(25.0, 35.0)),
)


@scenario_kind("tuning")
@dataclass(frozen=True)
class TuningScenario(Scenario):
    """An automated rule-base tuning run over a controller definition.

    ``controller`` names the base :class:`~repro.fuzzy.definition.FLCDefinition`
    the search starts from — the built-in ``"FLC1"``/``"FLC2"`` exports or a
    path to an FLC-definition JSON file — and ``parameters`` declares the
    tunable membership break points and rule weights
    (:class:`~repro.tuning.space.ParameterSpec` entries).  The named
    strategy proposes candidate value vectors, every candidate is scored
    by the paper's acceptance sweep (``request_counts`` x ``replications``,
    seeded) through the registered ``objective`` comparison metric, and
    generations fan over the chosen executor.  Results are byte-identical
    at any worker count.
    """

    controller: str = "FLC1"
    parameters: tuple[ParameterSpec, ...] = DEFAULT_TUNING_PARAMETERS
    strategy: str = "grid"
    objective: str = "mean_acceptance"
    direction: str = "maximize"
    request_counts: tuple[int, ...] = (10, 30)
    replications: int = 2
    population: int = 8
    generations: int = 6
    max_trials: int | None = None
    seed: int = 20070801
    engine: str = "compiled"
    executor: str = "serial"
    workers: int | None = None

    def __post_init__(self) -> None:
        _require(
            isinstance(self.controller, str) and bool(self.controller),
            f"controller must be a non-empty string, got {self.controller!r}",
        )
        if self.controller.endswith(".json"):
            _require(
                Path(self.controller).is_file(),
                f"controller definition file not found: {self.controller!r}",
            )
        else:
            _require(
                self.controller in ("FLC1", "FLC2"),
                f"controller must be 'FLC1', 'FLC2' or a path to an "
                f"FLC-definition JSON file, got {self.controller!r}",
            )
        try:
            space = SearchSpace(tuple(self.parameters))
            space.validate_against(self.base_definition())
        except (TuningError, DefinitionError) as exc:
            raise ScenarioError(f"invalid tuning parameters: {exc}") from exc
        object.__setattr__(self, "parameters", space.specs)
        _require(
            self.strategy in STRATEGIES,
            f"unknown tuning strategy {self.strategy!r}; "
            f"available: {STRATEGIES.names()}",
        )
        _require(
            self.objective in COMPARISON_METRICS,
            f"unknown tuning objective {self.objective!r}; "
            f"available: {COMPARISON_METRICS.names()}",
        )
        _require(
            self.direction in ("maximize", "minimize"),
            f"direction must be 'maximize' or 'minimize', "
            f"got {self.direction!r}",
        )
        _require(bool(self.request_counts), "request_counts must not be empty")
        for value in self.request_counts:
            _check_int(value, "request_counts entry", 1)
        _check_int(self.replications, "replications", 1)
        _check_int(self.population, "population", 1)
        _check_int(self.generations, "generations", 1)
        _check_optional_int(self.max_trials, "max_trials", 1)
        _check_seed(self.seed)
        _check_engine(self.engine)
        _check_executor(self.executor, self.workers)

    def search_space(self) -> SearchSpace:
        """The validated :class:`SearchSpace` over the base definition."""
        return SearchSpace(self.parameters)

    def base_definition(self):
        """Resolve ``controller`` to the definition the search starts from."""
        from ..analysis.io import read_flc_definition_json
        from ..cac.facs.definitions import builtin_definitions

        if self.controller.endswith(".json"):
            return read_flc_definition_json(Path(self.controller))
        return builtin_definitions()[self.controller]

    def to_dict(self) -> dict[str, Any]:
        payload = super().to_dict()
        payload["parameters"] = [spec.to_dict() for spec in self.parameters]
        return payload

    @property
    def slug(self) -> str:
        return f"tune-{Path(self.controller).stem.lower()}"


# ----------------------------------------------------------------------
# Built-in default scenarios, one per `python -m repro list` entry.
# Registration order matches the EXPERIMENTS inventory.
# ----------------------------------------------------------------------
@register_scenario("table1-frb1")
def _table1_scenario() -> Scenario:
    return ArtifactScenario(artifact="table1-frb1")


@register_scenario("table2-frb2")
def _table2_scenario() -> Scenario:
    return ArtifactScenario(artifact="table2-frb2")


@register_scenario("fig5-flc1-mf")
def _fig5_scenario() -> Scenario:
    return ArtifactScenario(artifact="fig5-flc1-mf")


@register_scenario("fig6-flc2-mf")
def _fig6_scenario() -> Scenario:
    return ArtifactScenario(artifact="fig6-flc2-mf")


@register_scenario("fig7-speed")
def _fig7_scenario() -> Scenario:
    return FigureSweepScenario(figure="fig7-speed")


@register_scenario("fig8-angle")
def _fig8_scenario() -> Scenario:
    return FigureSweepScenario(figure="fig8-angle")


@register_scenario("fig9-distance")
def _fig9_scenario() -> Scenario:
    return FigureSweepScenario(figure="fig9-distance")


@register_scenario("fig10-facs-vs-scc")
def _fig10_scenario() -> Scenario:
    return FigureSweepScenario(figure="fig10-facs-vs-scc")


@register_scenario("abl-defuzz")
def _abl_defuzz_scenario() -> Scenario:
    return AblationScenario(ablation="defuzz")


@register_scenario("abl-threshold")
def _abl_threshold_scenario() -> Scenario:
    return AblationScenario(ablation="threshold")


@register_scenario("abl-baselines")
def _abl_baselines_scenario() -> Scenario:
    return AblationScenario(ablation="baselines")


@register_scenario("net-integration")
def _net_integration_scenario() -> Scenario:
    return NetworkIntegrationScenario()


@register_scenario("net-sweep")
def _net_sweep_scenario() -> Scenario:
    return NetworkSweepScenario()


@register_scenario("surface-flc1")
def _surface_flc1_scenario() -> Scenario:
    return SurfaceScenario(surface="flc1")


@register_scenario("surface-flc2")
def _surface_flc2_scenario() -> Scenario:
    return SurfaceScenario(surface="flc2")


@register_scenario("net-sweep-sharded")
def _net_sweep_sharded_scenario() -> Scenario:
    return ShardedNetworkSweepScenario()


@register_scenario("net-sweep-coupled-sharded")
def _net_sweep_coupled_sharded_scenario() -> Scenario:
    return CoupledShardedNetworkSweepScenario()


@register_scenario("trace-arrivals")
def _trace_arrivals_scenario() -> Scenario:
    return TraceArrivalsScenario()


@register_scenario("service-replay")
def _service_replay_scenario() -> Scenario:
    return ServiceReplayScenario()
