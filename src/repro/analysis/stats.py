"""Statistical helpers for reporting simulation results."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from scipy import stats as scipy_stats

__all__ = [
    "SummaryStatistics",
    "summarize",
    "t_confidence_interval",
    "paired_difference",
    "series_mean",
    "series_sample_std",
    "acceptance_percentage",
]


def acceptance_percentage(accepted: float, requested: float) -> float:
    """Acceptance percentage with the pinned historical arithmetic.

    ``100.0 * (accepted / requested)``, and ``0.0`` when nothing was
    requested — the single executable spec of the paper's headline metric,
    shared by :class:`repro.cellular.metrics.CallMetrics`, the frame's
    derived acceptance column and the trace pipeline's counter-free
    fallback, so every reporting path stays bit-identical (see
    :func:`series_mean` for why the arithmetic is pinned).
    """
    if requested == 0:
        return 0.0
    return 100.0 * (accepted / requested)


def series_mean(values: Sequence[float]) -> float:
    """Left-to-right mean: ``sum(values) / len(values)``.

    This is deliberately the exact arithmetic of the historical replication
    aggregation loops (``aggregate_runs``/``aggregate_network_runs``), kept
    as the single executable spec both those loops and the columnar
    :meth:`repro.analysis.frame.MetricsFrame.group_reduce` share — so the
    two paths stay bit-identical, not merely close.
    """
    if not values:
        raise ValueError("cannot average an empty series")
    return sum(values) / len(values)


def series_sample_std(values: Sequence[float], mean: float | None = None) -> float:
    """Sample standard deviation with the historical loop arithmetic.

    ``sqrt(sum((v - mean)**2) / (n - 1))`` for ``n > 1``, else ``0.0`` —
    the exact expression of the original aggregation loops (see
    :func:`series_mean` for why the arithmetic is pinned).
    """
    if not values:
        raise ValueError("cannot take the deviation of an empty series")
    if mean is None:
        mean = series_mean(values)
    if len(values) <= 1:
        return 0.0
    variance = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
    return math.sqrt(variance)


@dataclass(frozen=True)
class SummaryStatistics:
    """Mean / spread summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float

    @property
    def standard_error(self) -> float:
        if self.count < 1:
            return 0.0
        return self.std / math.sqrt(self.count)


def summarize(values: Sequence[float]) -> SummaryStatistics:
    """Compute summary statistics of a non-empty sample."""
    data = [float(v) for v in values]
    if not data:
        raise ValueError("cannot summarise an empty sample")
    count = len(data)
    mean = sum(data) / count
    if count > 1:
        variance = sum((v - mean) ** 2 for v in data) / (count - 1)
    else:
        variance = 0.0
    return SummaryStatistics(
        count=count,
        mean=mean,
        std=math.sqrt(variance),
        minimum=min(data),
        maximum=max(data),
    )


def t_confidence_interval(
    values: Sequence[float], confidence: float = 0.95
) -> tuple[float, float]:
    """Student-t confidence interval for the mean of a sample."""
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must lie in (0, 1), got {confidence}")
    summary = summarize(values)
    if summary.count < 2 or summary.std == 0.0:
        return (summary.mean, summary.mean)
    t_value = float(scipy_stats.t.ppf(0.5 + confidence / 2.0, df=summary.count - 1))
    half_width = t_value * summary.standard_error
    return (summary.mean - half_width, summary.mean + half_width)


def paired_difference(
    first: Sequence[float], second: Sequence[float], confidence: float = 0.95
) -> tuple[float, tuple[float, float]]:
    """Mean paired difference (first - second) with its confidence interval.

    Used to report e.g. "FACS accepts X percentage points more than SCC at
    N=30 requests" with an uncertainty band across replications.
    """
    if len(first) != len(second):
        raise ValueError(
            f"paired samples must have equal length, got {len(first)} and {len(second)}"
        )
    differences = [float(a) - float(b) for a, b in zip(first, second)]
    interval = t_confidence_interval(differences, confidence)
    return (sum(differences) / len(differences), interval)
