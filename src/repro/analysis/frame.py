"""Columnar, numpy-backed result core: the :class:`MetricsFrame`.

Every headline artifact of the paper (Figs. 7-10, the controller tables)
is an *aggregation over many replications*, yet the result path used to
shuttle per-run dataclass trees around: process workers pickled whole
``NetworkRunOutput`` objects back to the parent and the aggregation loops
walked them in pure Python.  The :class:`MetricsFrame` replaces that with
a compact columnar record store — one row per run, fixed-dtype numpy
columns for the counters and parameters, interned string vocabularies for
curve labels and controller ids — that

* builds from run results (:meth:`MetricsFrame.from_run_results`) or
  multi-cell outputs (:meth:`MetricsFrame.from_network_outputs`),
* concatenates row-wise in task order (:meth:`MetricsFrame.concat`),
* reduces per group (:meth:`MetricsFrame.group_reduce`, mean/std/CI per
  controller x parameter group) with **bit-identical** arithmetic to the
  historical ``aggregate_runs``/``aggregate_network_runs`` loops
  (the shared spec lives in :func:`repro.analysis.stats.series_mean` /
  :func:`~repro.analysis.stats.series_sample_std`), and
* serialises as raw column buffers — shared-memory backed for the process
  pool (:func:`pack_frame`/:func:`unpack_frame`) — so workers ship a
  handful of flat arrays instead of pickled dataclass trees, the same
  move NIC-side collective aggregation makes: reduce where the data is.

The legacy dataclasses (``RunResult``, ``AggregatedResult``,
``NetworkAggregatedResult``, ``NetworkRunOutput``) survive as thin views
over frame rows: :meth:`MetricsFrame.run_result`,
:meth:`MetricsFrame.network_output` and :meth:`FrameGroup.to_aggregated_result`
reconstruct them exactly, so every renderer keeps its exact output.

Import discipline: this module must not import anything from
``repro.simulation`` at module scope (the simulation layer imports the
frame on its hot path); the view constructors import the dataclasses
lazily instead.
"""

from __future__ import annotations

import itertools
import json
import sys
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Mapping, NamedTuple, Sequence

import numpy as np

from ..cellular.metrics import CallMetrics
from .stats import series_mean, series_sample_std

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (simulation imports us)
    from ..simulation.engine import NetworkRunOutput
    from ..simulation.results import (
        AggregatedResult,
        NetworkAggregatedResult,
        RunResult,
    )

__all__ = [
    "BATCH_KIND",
    "NETWORK_KIND",
    "CLASS_COUNTER_FIELDS",
    "MEMMAP_SCHEMA_VERSION",
    "class_column_names",
    "FrameAccumulator",
    "FrameGroup",
    "FrameReducer",
    "FrameRow",
    "MetricsFrame",
    "StreamingFrameReducer",
    "network_output_row",
    "pack_frame",
    "run_result_row",
    "unpack_frame",
]

#: On-disk memory-map format version (``frame.json`` header + one raw
#: ``colNNNNN.bin`` per column); bumped on any layout change.
MEMMAP_SCHEMA_VERSION = 1
_MEMMAP_HEADER = "frame.json"

#: Frame kinds: single-cell batch runs vs multi-cell network runs (which
#: carry the extra handoff/occupancy columns).
BATCH_KIND = "batch"
NETWORK_KIND = "network"

#: Per-run call counters (CallMetrics fields), one int64 column each.
COUNTER_COLUMNS: tuple[str, ...] = CallMetrics.COUNTER_FIELDS
#: Extra counters of a multi-cell run, one int64 column each.
NETWORK_COUNTER_COLUMNS: tuple[str, ...] = (
    "handoff_attempts",
    "handoff_failures",
    "completed_calls",
    "dropped_calls",
)
#: Time-average occupancy of a multi-cell run (float64).
OCCUPANCY_COLUMN = "time_average_occupancy_bu"
#: Optional ordinal columns the sweeps attach for positional grouping.
ORDINAL_COLUMNS: tuple[str, ...] = ("curve", "point")

#: Prefix separating parameter columns from the fixed schema in the
#: internal column dict (a parameter may not shadow e.g. "controller").
_PARAM_PREFIX = "param."

#: Prefix of the optional per-service-class counter columns
#: (``class.<service>.<counter>``), attached only by workload runs.
_CLASS_PREFIX = "class."

#: Per-class counters a workload run attaches, one float64 column per
#: (service class, counter) pair; NaN marks rows without class counters.
CLASS_COUNTER_FIELDS: tuple[str, ...] = (
    "requested",
    "accepted",
    "blocked",
    "dropped",
    "completed",
)


def class_column_names(class_names: Sequence[str]) -> tuple[str, ...]:
    """Column names of the per-class counters for ``class_names``."""
    return tuple(
        f"{_CLASS_PREFIX}{service}.{counter}"
        for service in class_names
        for counter in CLASS_COUNTER_FIELDS
    )

#: Derived per-row rate columns, computed lazily from the counters.
_DERIVED = ("acceptance_percentage", "blocking_probability", "dropping_probability")
_NETWORK_DERIVED = ("handoff_failure_ratio",)


class FrameRow(NamedTuple):
    """One run's compact counter row — the only thing workers emit.

    Plain strings, ints and floats: cheap to build inside a worker and
    cheap to fold into a chunk-local :class:`MetricsFrame` there, so the
    heavyweight run outputs never cross a process boundary.  Parameter
    names and values are parallel tuples (not pairs) so a whole chunk of
    rows transposes into columns with one ``zip(*rows)``.
    """

    label: str
    controller: str
    seed: int
    replication: int
    param_names: tuple[str, ...]
    param_values: tuple[float, ...]
    counters: tuple[int, ...]
    network: tuple[int, int, int, int] | None
    occupancy: float | None
    #: Service-class names of the per-class counters (empty for legacy
    #: runs) and the counter values, flattened class-major over
    #: :data:`CLASS_COUNTER_FIELDS`.
    class_names: tuple[str, ...] = ()
    class_values: tuple[float, ...] = ()

    @property
    def parameters(self) -> dict[str, float]:
        """The row's parameters as a mapping (convenience view)."""
        return dict(zip(self.param_names, self.param_values))


def run_result_row(
    result: "RunResult",
    label: str | None = None,
    replication: int = 0,
    class_names: tuple[str, ...] = (),
    class_values: tuple[float, ...] = (),
) -> FrameRow:
    """Counter row of one single-cell :class:`~repro.simulation.results.RunResult`.

    Per-row hot path: no defensive coercions here — parameter values are
    floats by the :class:`RunResult` contract, and :meth:`MetricsFrame.from_rows`
    coerces to the fixed column dtypes anyway.
    """
    # tuple.__new__ skips the NamedTuple keyword wrapper: this runs once
    # per replication and the wrapper is measurable at sweep scale.  It
    # also skips field defaults, so the class fields are spelled out.
    return tuple.__new__(
        FrameRow,
        (
            result.controller if label is None else label,
            result.controller,
            result.seed,
            replication,
            tuple(result.parameters),
            tuple(result.parameters.values()),
            result.metrics.as_counters(),
            None,
            None,
            class_names,
            class_values,
        ),
    )


def network_output_row(
    output: "NetworkRunOutput", label: str | None = None, replication: int = 0
) -> FrameRow:
    """Counter row of one :class:`~repro.simulation.engine.NetworkRunOutput`."""
    result = output.result
    return tuple.__new__(
        FrameRow,
        (
            result.controller if label is None else label,
            result.controller,
            result.seed,
            replication,
            tuple(result.parameters),
            tuple(result.parameters.values()),
            result.metrics.as_counters(),
            (
                output.handoff_attempts,
                output.handoff_failures,
                output.completed_calls,
                output.dropped_calls,
            ),
            output.time_average_occupancy_bu,
            output.class_names,
            output.class_values,
        ),
    )


def _encode(values: Sequence[str], vocab: dict[str, int]) -> np.ndarray:
    """Int32 codes of ``values``, filling ``vocab`` in first-appearance order.

    Single-value sequences (the common worker-chunk shape) skip the
    per-element dict walk.
    """
    if len(set(values)) == 1:
        vocab[values[0]] = 0
        return np.zeros(len(values), dtype=np.int32)
    return np.array(
        [vocab.setdefault(v, len(vocab)) for v in values], dtype=np.int32
    )


@dataclass(frozen=True)
class FrameGroup:
    """One (controller x parameter) group of a :meth:`MetricsFrame.group_reduce`.

    Carries the replication statistics of the group — computed with the
    exact arithmetic of the historical aggregation loops — plus enough
    context (controller, label, first-row parameters) to re-express the
    legacy aggregate dataclasses as views via
    :meth:`to_aggregated_result`/:meth:`to_network_aggregated_result`.
    """

    key: tuple[Any, ...]
    label: str
    controller: str
    parameters: Mapping[str, float]
    replications: int
    row_indices: tuple[int, ...]
    mean_acceptance_percentage: float
    std_acceptance_percentage: float
    mean_blocking_probability: float
    mean_dropping_probability: float
    mean_handoff_failure_ratio: float | None = None
    mean_handoff_attempts: float | None = None
    mean_occupancy_bu: float | None = None
    #: Per-service-class counter totals over the group's rows
    #: (``"<service>.<counter>"`` -> sum, NaN rows skipped), or ``None``
    #: when the frame carries no class columns.
    class_totals: Mapping[str, float] | None = None

    def class_blocking_probability(self, service: str) -> float:
        """Per-class new-call blocking (ratio of group sums)."""
        totals = self._class_totals_for(service)
        requested = totals[f"{service}.requested"]
        return totals[f"{service}.blocked"] / requested if requested else 0.0

    def class_dropping_probability(self, service: str) -> float:
        """Per-class dropping of admitted calls (ratio of group sums)."""
        totals = self._class_totals_for(service)
        accepted = totals[f"{service}.accepted"]
        return totals[f"{service}.dropped"] / accepted if accepted else 0.0

    def _class_totals_for(self, service: str) -> Mapping[str, float]:
        if self.class_totals is None or f"{service}.requested" not in self.class_totals:
            raise KeyError(
                f"group has no per-class counters for service {service!r}"
            )
        return self.class_totals

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-theory CI of the mean acceptance percentage."""
        return self.to_aggregated_result().confidence_interval(z)

    def to_aggregated_result(self) -> "AggregatedResult":
        """This group as the legacy single-cell aggregate dataclass."""
        from ..simulation.results import AggregatedResult

        return AggregatedResult(
            controller=self.controller,
            parameters=dict(self.parameters),
            replications=self.replications,
            mean_acceptance_percentage=self.mean_acceptance_percentage,
            std_acceptance_percentage=self.std_acceptance_percentage,
            mean_blocking_probability=self.mean_blocking_probability,
            mean_dropping_probability=self.mean_dropping_probability,
        )

    def to_network_aggregated_result(self) -> "NetworkAggregatedResult":
        """This group as the legacy multi-cell aggregate dataclass."""
        if self.mean_handoff_failure_ratio is None:
            raise ValueError(
                "this group was reduced from a batch frame; network QoS "
                "means exist only for network-kind frames"
            )
        from ..simulation.results import NetworkAggregatedResult

        return NetworkAggregatedResult(
            controller=self.controller,
            parameters=dict(self.parameters),
            replications=self.replications,
            mean_acceptance_percentage=self.mean_acceptance_percentage,
            std_acceptance_percentage=self.std_acceptance_percentage,
            mean_blocking_probability=self.mean_blocking_probability,
            mean_dropping_probability=self.mean_dropping_probability,
            mean_handoff_failure_ratio=self.mean_handoff_failure_ratio,
            mean_handoff_attempts=self.mean_handoff_attempts,
            mean_occupancy_bu=self.mean_occupancy_bu,
        )


class MetricsFrame:
    """Compact columnar store of per-run counters and parameters.

    Construction goes through the classmethods (:meth:`from_rows`,
    :meth:`from_run_results`, :meth:`from_network_outputs`,
    :meth:`concat`, :meth:`from_columns`); rows stay in insertion (task)
    order throughout, which is what keeps sweep results byte-identical
    for every executor backend and worker count.
    """

    __slots__ = (
        "kind",
        "label_vocab",
        "controller_vocab",
        "param_names",
        "class_names",
        "_columns",
    )

    def __init__(
        self,
        kind: str,
        columns: Mapping[str, np.ndarray],
        label_vocab: Sequence[str],
        controller_vocab: Sequence[str],
        param_names: Sequence[str],
        class_names: Sequence[str] = (),
    ):
        if kind not in (BATCH_KIND, NETWORK_KIND):
            raise ValueError(f"unknown frame kind {kind!r}")
        self.kind = kind
        # Interned vocabularies: equal-valued frames then pickle to
        # identical bytes whether their rows were built in-process or
        # unpickled from a worker (same reasoning as SweepCurve).
        self.label_vocab = tuple(sys.intern(str(v)) for v in label_vocab)
        self.controller_vocab = tuple(sys.intern(str(v)) for v in controller_vocab)
        self.param_names = tuple(sys.intern(str(v)) for v in param_names)
        self.class_names = tuple(sys.intern(str(v)) for v in class_names)
        spec = self._column_spec(self.kind, self.param_names, self.class_names)
        missing = [name for name in spec if name not in columns]
        extra = sorted(set(columns) - set(spec) - set(ORDINAL_COLUMNS))
        if missing or extra:
            raise ValueError(
                f"frame columns mismatch: missing {missing}, unexpected {extra}"
            )
        ordered: dict[str, np.ndarray] = {}
        length: int | None = None
        names = list(spec) + [c for c in ORDINAL_COLUMNS if c in columns]
        for name in names:
            dtype = spec.get(name, np.int64)
            array = np.ascontiguousarray(columns[name], dtype=dtype)
            if array.ndim != 1:
                raise ValueError(f"column {name!r} must be 1-D, got shape {array.shape}")
            if length is None:
                length = len(array)
            elif len(array) != length:
                raise ValueError(
                    f"column {name!r} has {len(array)} rows, expected {length}"
                )
            ordered[name] = array
        self._columns = ordered

    # ------------------------------------------------------------------
    @staticmethod
    @lru_cache(maxsize=128)
    def _column_spec(
        kind: str,
        param_names: tuple[str, ...],
        class_names: tuple[str, ...] = (),
    ) -> dict[str, type]:
        spec: dict[str, type] = {
            "label": np.int32,
            "controller": np.int32,
            "seed": np.int64,
            "replication": np.int64,
        }
        for name in COUNTER_COLUMNS:
            spec[name] = np.int64
        if kind == NETWORK_KIND:
            for name in NETWORK_COUNTER_COLUMNS:
                spec[name] = np.int64
            spec[OCCUPANCY_COLUMN] = np.float64
        for name in param_names:
            spec[_PARAM_PREFIX + name] = np.float64
        for name in class_column_names(class_names):
            spec[name] = np.float64
        return spec

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._columns["label"])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MetricsFrame):
            return NotImplemented
        if (
            self.kind != other.kind
            or self.label_vocab != other.label_vocab
            or self.controller_vocab != other.controller_vocab
            or self.param_names != other.param_names
            or self.class_names != other.class_names
            or set(self._columns) != set(other._columns)
        ):
            return False
        # Bitwise column comparison: NaN parameter slots compare equal.
        return all(
            self._columns[name].tobytes() == other._columns[name].tobytes()
            for name in self._columns
        )

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MetricsFrame(kind={self.kind!r}, rows={len(self)}, "
            f"labels={len(self.label_vocab)}, params={list(self.param_names)})"
        )

    @property
    def columns(self) -> dict[str, np.ndarray]:
        """Name -> column array (the arrays themselves, not copies)."""
        return dict(self._columns)

    def column(self, name: str) -> np.ndarray:
        """One raw column; parameter columns go by their bare name."""
        if name in self.param_names:
            name = _PARAM_PREFIX + name
        try:
            return self._columns[name]
        except KeyError:
            raise KeyError(
                f"frame has no column {name!r}; available: {self.column_names()}"
            ) from None

    def column_names(self) -> list[str]:
        return [
            name[len(_PARAM_PREFIX):] if name.startswith(_PARAM_PREFIX) else name
            for name in self._columns
        ]

    @property
    def has_ordinals(self) -> bool:
        return all(name in self._columns for name in ORDINAL_COLUMNS)

    def labels(self) -> list[str]:
        """Per-row curve labels (decoded)."""
        return [self.label_vocab[code] for code in self._columns["label"].tolist()]

    def controllers(self) -> list[str]:
        """Per-row controller ids (decoded)."""
        return [
            self.controller_vocab[code]
            for code in self._columns["controller"].tolist()
        ]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(cls, kind: str, rows: Iterable[FrameRow]) -> "MetricsFrame":
        """Build a frame from counter rows, preserving row order.

        Bulk construction: one ``zip(*rows)`` transposes the whole chunk
        into per-field columns at C speed, and the numeric families
        convert through single 2-D ``np.array`` calls — this is the
        worker-side fold of every sweep, so it must stay cheap at
        thousands of rows.
        """
        rows = list(rows)
        n = len(rows)
        if n == 0:
            return cls(kind, cls._empty_columns(kind), (), (), ())
        (
            labels,
            controllers,
            seeds,
            replication_ids,
            name_tuples,
            value_tuples,
            counter_tuples,
            network_tuples,
            occupancies,
            class_name_tuples,
            class_value_tuples,
        ) = zip(*rows)

        label_vocab: dict[str, int] = {}
        controller_vocab: dict[str, int] = {}
        columns: dict[str, np.ndarray] = {
            "label": _encode(labels, label_vocab),
            "controller": _encode(controllers, controller_vocab),
            "seed": np.array(seeds, dtype=np.int64),
            "replication": np.array(replication_ids, dtype=np.int64),
        }
        counters = np.fromiter(
            itertools.chain.from_iterable(counter_tuples),
            dtype=np.int64,
            count=n * len(COUNTER_COLUMNS),
        ).reshape(n, len(COUNTER_COLUMNS))
        for offset, name in enumerate(COUNTER_COLUMNS):
            columns[name] = counters[:, offset]
        if kind == NETWORK_KIND:
            if None in network_tuples or None in occupancies:
                raise ValueError(
                    "network-kind frames need the handoff counters and "
                    "occupancy on every row (got a batch row)"
                )
            network = np.fromiter(
                itertools.chain.from_iterable(network_tuples),
                dtype=np.int64,
                count=n * len(NETWORK_COUNTER_COLUMNS),
            ).reshape(n, len(NETWORK_COUNTER_COLUMNS))
            for offset, name in enumerate(NETWORK_COUNTER_COLUMNS):
                columns[name] = network[:, offset]
            columns[OCCUPANCY_COLUMN] = np.array(occupancies, dtype=np.float64)
        elif any(value is not None for value in network_tuples):
            raise ValueError(
                "batch-kind frames cannot hold network rows; build the frame "
                f"with kind={NETWORK_KIND!r}"
            )
        param_names = cls._fill_param_columns(name_tuples, value_tuples, n, columns)
        class_names = cls._fill_class_columns(
            class_name_tuples, class_value_tuples, n, columns
        )
        return cls(
            kind,
            columns,
            tuple(label_vocab),
            tuple(controller_vocab),
            param_names,
            class_names,
        )

    @staticmethod
    def _empty_columns(kind: str) -> dict[str, np.ndarray]:
        return {
            name: np.array([], dtype=dtype)
            for name, dtype in MetricsFrame._column_spec(kind, ()).items()
        }

    @staticmethod
    def _fill_param_columns(
        name_tuples: Sequence[tuple[str, ...]],
        value_tuples: Sequence[tuple[float, ...]],
        n: int,
        columns: dict[str, np.ndarray],
    ) -> tuple[str, ...]:
        """Add the parameter columns to ``columns``.

        Fast path: every row of a sweep carries the same parameter-name
        tuple (checked with one set build over cached-hash tuples), so
        the values convert as one 2-D array.  Heterogeneous rows (mixed
        frames) fall back to per-row fills with NaN for absent
        parameters.
        """
        distinct = set(name_tuples)
        if len(distinct) == 1:
            names = name_tuples[0]
            if names:
                values = np.fromiter(
                    itertools.chain.from_iterable(value_tuples),
                    dtype=np.float64,
                    count=n * len(names),
                ).reshape(n, len(names))
                for offset, name in enumerate(names):
                    columns[_PARAM_PREFIX + name] = values[:, offset]
            return names
        param_names: dict[str, None] = {}
        for names in name_tuples:
            for name in names:
                param_names.setdefault(name, None)
        filled = {
            name: np.full(n, np.nan, dtype=np.float64) for name in param_names
        }
        for i, (names, values) in enumerate(zip(name_tuples, value_tuples)):
            for name, value in zip(names, values):
                filled[name][i] = value
        for name, values in filled.items():
            columns[_PARAM_PREFIX + name] = values
        return tuple(param_names)

    @staticmethod
    def _fill_class_columns(
        name_tuples: Sequence[tuple[str, ...]],
        value_tuples: Sequence[tuple[float, ...]],
        n: int,
        columns: dict[str, np.ndarray],
    ) -> tuple[str, ...]:
        """Add the per-class counter columns to ``columns``.

        Mirrors :meth:`_fill_param_columns`: the all-rows-identical case
        (including the all-legacy ``()`` case, which adds nothing)
        converts as one 2-D array; mixed frames NaN-fill per row.
        """
        distinct = set(name_tuples)
        if len(distinct) == 1:
            class_names = name_tuples[0]
            if class_names:
                column_names = class_column_names(class_names)
                values = np.fromiter(
                    itertools.chain.from_iterable(value_tuples),
                    dtype=np.float64,
                    count=n * len(column_names),
                ).reshape(n, len(column_names))
                for offset, name in enumerate(column_names):
                    columns[name] = values[:, offset]
            return class_names
        class_names_union: dict[str, None] = {}
        for names in name_tuples:
            for name in names:
                class_names_union.setdefault(name, None)
        filled = {
            name: np.full(n, np.nan, dtype=np.float64)
            for name in class_column_names(tuple(class_names_union))
        }
        for i, (names, values) in enumerate(zip(name_tuples, value_tuples)):
            for name, value in zip(class_column_names(names), values):
                filled[name][i] = value
        columns.update(filled)
        return tuple(class_names_union)

    @classmethod
    def from_run_results(
        cls,
        runs: Sequence["RunResult"],
        labels: Sequence[str] | None = None,
        replications: Sequence[int] | None = None,
    ) -> "MetricsFrame":
        """Build a batch-kind frame, one row per :class:`RunResult`."""
        return cls.from_rows(
            BATCH_KIND, cls._result_rows(run_result_row, runs, labels, replications)
        )

    @classmethod
    def from_network_outputs(
        cls,
        outputs: Sequence["NetworkRunOutput"],
        labels: Sequence[str] | None = None,
        replications: Sequence[int] | None = None,
    ) -> "MetricsFrame":
        """Build a network-kind frame, one row per :class:`NetworkRunOutput`."""
        return cls.from_rows(
            NETWORK_KIND,
            cls._result_rows(network_output_row, outputs, labels, replications),
        )

    @staticmethod
    def _result_rows(row_fn, results, labels, replications) -> list[FrameRow]:
        if labels is not None and len(labels) != len(results):
            raise ValueError(
                f"{len(labels)} labels for {len(results)} results"
            )
        if replications is not None and len(replications) != len(results):
            raise ValueError(
                f"{len(replications)} replication indices for {len(results)} results"
            )
        return [
            row_fn(
                result,
                label=None if labels is None else labels[i],
                replication=0 if replications is None else replications[i],
            )
            for i, result in enumerate(results)
        ]

    @classmethod
    def concat(cls, frames: Sequence["MetricsFrame"]) -> "MetricsFrame":
        """Stack frames row-wise, preserving order and merging vocabularies."""
        frames = list(frames)
        if not frames:
            raise ValueError("cannot concatenate an empty list of frames")
        if len(frames) == 1:
            return frames[0]
        kinds = {frame.kind for frame in frames}
        if len(kinds) != 1:
            raise ValueError(f"frames mix kinds: {sorted(kinds)}")
        ordinal_presence = {frame.has_ordinals for frame in frames}
        if len(ordinal_presence) != 1:
            raise ValueError("cannot concatenate frames with and without ordinals")
        kind = frames[0].kind
        label_vocab: dict[str, int] = {}
        controller_vocab: dict[str, int] = {}
        param_names: dict[str, None] = {}
        class_names: dict[str, None] = {}
        for frame in frames:
            for value in frame.label_vocab:
                label_vocab.setdefault(value, len(label_vocab))
            for value in frame.controller_vocab:
                controller_vocab.setdefault(value, len(controller_vocab))
            for name in frame.param_names:
                param_names.setdefault(name, None)
            for name in frame.class_names:
                class_names.setdefault(name, None)

        def remapped(frame: "MetricsFrame", column: str, vocab: dict[str, int],
                     source: tuple[str, ...]) -> np.ndarray:
            remap = np.array([vocab[v] for v in source], dtype=np.int32)
            codes = frame._columns[column]
            return remap[codes] if len(remap) else codes

        columns: dict[str, np.ndarray] = {}
        spec = cls._column_spec(kind, tuple(param_names), tuple(class_names))
        names = list(spec) + (list(ORDINAL_COLUMNS) if frames[0].has_ordinals else [])
        for name in names:
            parts = []
            for frame in frames:
                if name == "label":
                    parts.append(remapped(frame, name, label_vocab, frame.label_vocab))
                elif name == "controller":
                    parts.append(
                        remapped(frame, name, controller_vocab, frame.controller_vocab)
                    )
                elif name in frame._columns:
                    parts.append(frame._columns[name])
                else:  # parameter/class column absent in this frame
                    parts.append(np.full(len(frame), np.nan, dtype=np.float64))
            columns[name] = np.concatenate(parts) if parts else np.array([])
        return cls(
            kind,
            columns,
            tuple(label_vocab),
            tuple(controller_vocab),
            tuple(param_names),
            tuple(class_names),
        )

    def with_ordinals(
        self, curve: Sequence[int] | np.ndarray, point: Sequence[int] | np.ndarray
    ) -> "MetricsFrame":
        """Copy of this frame with positional (curve, point) grouping columns.

        The sweeps group by these ordinals rather than by parameter values,
        so degenerate inputs (duplicate x values) keep one group per
        declared point — exactly the historical task-order semantics.
        """
        columns = dict(self._columns)
        columns["curve"] = np.asarray(curve, dtype=np.int64)
        columns["point"] = np.asarray(point, dtype=np.int64)
        return MetricsFrame(
            self.kind,
            columns,
            self.label_vocab,
            self.controller_vocab,
            self.param_names,
            self.class_names,
        )

    # ------------------------------------------------------------------
    # Derived per-row rates
    # ------------------------------------------------------------------
    def derived_column(self, name: str) -> np.ndarray:
        """Per-row derived rate, vectorized.

        Element-wise IEEE-754 float64 arithmetic in the exact expression
        order of the legacy properties (``100.0 * (accepted / requested)``
        etc.), so each element is bit-identical to the per-object Python
        computation it replaces.
        """
        cols = self._columns
        with np.errstate(divide="ignore", invalid="ignore"):
            if name == "acceptance_percentage":
                requested = cols["requested"]
                return np.where(
                    requested == 0, 0.0, 100.0 * (cols["accepted"] / requested)
                )
            if name == "blocking_probability":
                requested = cols["requested"]
                return np.where(requested == 0, 0.0, cols["blocked"] / requested)
            if name == "dropping_probability":
                accepted = cols["accepted"]
                return np.where(accepted == 0, 0.0, cols["dropped"] / accepted)
            if name == "handoff_failure_ratio":
                if self.kind != NETWORK_KIND:
                    raise KeyError(
                        "handoff_failure_ratio exists only for network frames"
                    )
                attempts = cols["handoff_attempts"]
                return np.where(
                    attempts == 0, 0.0, cols["handoff_failures"] / attempts
                )
        available = list(_DERIVED) + (
            list(_NETWORK_DERIVED) if self.kind == NETWORK_KIND else []
        )
        raise KeyError(f"unknown derived column {name!r}; available: {available}")

    # ------------------------------------------------------------------
    # Group reduction
    # ------------------------------------------------------------------
    def _key_array(self, name: str) -> np.ndarray:
        if name in ("label", "controller"):
            return self._columns[name].astype(np.int64)
        if name in ("seed", "replication") or name in ORDINAL_COLUMNS:
            return self.column(name)
        if name in self.param_names:
            # Bitwise view so NaN ("parameter absent") groups with NaN.
            return self._columns[_PARAM_PREFIX + name].view(np.int64)
        raise KeyError(
            f"unknown group key {name!r}; available: "
            f"{['label', 'controller', 'seed', 'replication', *ORDINAL_COLUMNS, *self.param_names]}"
        )

    def _decoded_key(self, name: str, row: int) -> Any:
        if name == "label":
            return self.label_vocab[int(self._columns["label"][row])]
        if name == "controller":
            return self.controller_vocab[int(self._columns["controller"][row])]
        if name in self.param_names:
            return float(self._columns[_PARAM_PREFIX + name][row])
        return int(self.column(name)[row])

    def row_parameters(self, row: int) -> dict[str, float]:
        """The parameter mapping of one row (NaN slots dropped)."""
        parameters: dict[str, float] = {}
        for name in self.param_names:
            value = float(self._columns[_PARAM_PREFIX + name][row])
            if not np.isnan(value):
                parameters[name] = value
        return parameters

    def group_reduce(self, by: Sequence[str] | None = None) -> list[FrameGroup]:
        """Reduce replications per group, in first-appearance group order.

        ``by`` names the grouping keys ("label", "controller", "curve",
        "point", "seed", "replication" or any parameter column); the
        default groups per controller x full parameter vector.  Each
        group's mean/std statistics use the historical loop arithmetic
        (see :mod:`repro.analysis.stats`), so the reduction is
        bit-identical to ``aggregate_runs``/``aggregate_network_runs``
        over the same rows in the same order.
        """
        if by is None:
            by = ("controller", *self.param_names)
        by = tuple(by)
        if not by:
            raise ValueError("at least one group key is required")
        if len(self) == 0:
            return []
        keys = np.column_stack([self._key_array(name) for name in by])
        _, first_index, inverse = np.unique(
            keys, axis=0, return_index=True, return_inverse=True
        )
        inverse = inverse.reshape(-1)
        order = np.argsort(first_index, kind="stable")
        rank = np.empty(len(order), dtype=np.int64)
        rank[order] = np.arange(len(order))
        group_of_row = rank[inverse]
        sort_index = np.argsort(group_of_row, kind="stable")
        boundaries = np.flatnonzero(np.diff(group_of_row[sort_index])) + 1
        index_groups = np.split(sort_index, boundaries)

        acceptance = self.derived_column("acceptance_percentage")
        blocking = self.derived_column("blocking_probability")
        dropping = self.derived_column("dropping_probability")
        network = self.kind == NETWORK_KIND
        if network:
            handoff_failure = self.derived_column("handoff_failure_ratio")
            handoff_attempts = self._columns["handoff_attempts"]
            occupancy = self._columns[OCCUPANCY_COLUMN]
        class_columns = {
            name[len(_CLASS_PREFIX):]: self._columns[name]
            for name in class_column_names(self.class_names)
        }

        controller_codes = self._columns["controller"]
        groups: list[FrameGroup] = []
        for indices in index_groups:
            codes = np.unique(controller_codes[indices])
            if len(codes) != 1:
                mixed = sorted(self.controller_vocab[int(c)] for c in codes)
                raise ValueError(f"runs mix controllers: {mixed}")
            first = int(indices[0])
            acceptance_values = acceptance[indices].tolist()
            mean_acceptance = series_mean(acceptance_values)
            group = FrameGroup(
                key=tuple(self._decoded_key(name, first) for name in by),
                label=self.label_vocab[int(self._columns["label"][first])],
                controller=self.controller_vocab[int(codes[0])],
                parameters=self.row_parameters(first),
                replications=len(indices),
                row_indices=tuple(indices.tolist()),
                mean_acceptance_percentage=mean_acceptance,
                std_acceptance_percentage=series_sample_std(
                    acceptance_values, mean_acceptance
                ),
                mean_blocking_probability=series_mean(blocking[indices].tolist()),
                mean_dropping_probability=series_mean(dropping[indices].tolist()),
                mean_handoff_failure_ratio=(
                    series_mean(handoff_failure[indices].tolist()) if network else None
                ),
                mean_handoff_attempts=(
                    series_mean(handoff_attempts[indices].tolist()) if network else None
                ),
                mean_occupancy_bu=(
                    series_mean(occupancy[indices].tolist()) if network else None
                ),
                class_totals=(
                    {
                        name: float(np.nansum(column[indices]))
                        for name, column in class_columns.items()
                    }
                    if class_columns
                    else None
                ),
            )
            groups.append(group)
        return groups

    # ------------------------------------------------------------------
    # Row views (the legacy dataclasses, reconstructed)
    # ------------------------------------------------------------------
    def run_result(self, row: int) -> "RunResult":
        """Row ``row`` as the legacy :class:`RunResult` view."""
        from ..simulation.results import RunResult

        return RunResult(
            controller=self.controller_vocab[int(self._columns["controller"][row])],
            metrics=CallMetrics.from_counters(
                tuple(int(self._columns[name][row]) for name in COUNTER_COLUMNS)
            ),
            parameters=self.row_parameters(row),
            seed=int(self._columns["seed"][row]),
        )

    def run_results(self) -> list["RunResult"]:
        return [self.run_result(i) for i in range(len(self))]

    def network_output(self, row: int) -> "NetworkRunOutput":
        """Row ``row`` as the legacy :class:`NetworkRunOutput` view."""
        if self.kind != NETWORK_KIND:
            raise ValueError("batch-kind frames hold no network rows")
        from ..simulation.engine import NetworkRunOutput

        class_names: tuple[str, ...] = ()
        class_values: tuple[float, ...] = ()
        if self.class_names:
            values = tuple(
                float(self._columns[name][row])
                for name in class_column_names(self.class_names)
            )
            if not any(value != value for value in values):  # no NaN slots
                class_names = self.class_names
                class_values = values
        return NetworkRunOutput(
            result=self.run_result(row),
            handoff_attempts=int(self._columns["handoff_attempts"][row]),
            handoff_failures=int(self._columns["handoff_failures"][row]),
            completed_calls=int(self._columns["completed_calls"][row]),
            dropped_calls=int(self._columns["dropped_calls"][row]),
            time_average_occupancy_bu=float(self._columns[OCCUPANCY_COLUMN][row]),
            class_names=class_names,
            class_values=class_values,
        )

    def network_outputs(self) -> list["NetworkRunOutput"]:
        return [self.network_output(i) for i in range(len(self))]

    # ------------------------------------------------------------------
    # Column-buffer serialisation (the worker -> parent wire format)
    # ------------------------------------------------------------------
    def column_buffers(self) -> tuple[dict[str, Any], list[np.ndarray]]:
        """Schema metadata plus the raw column arrays, in schema order."""
        meta = {
            "kind": self.kind,
            "rows": len(self),
            "label_vocab": list(self.label_vocab),
            "controller_vocab": list(self.controller_vocab),
            "param_names": list(self.param_names),
            "class_names": list(self.class_names),
            "columns": [
                [name, array.dtype.str] for name, array in self._columns.items()
            ],
        }
        return meta, [np.ascontiguousarray(a) for a in self._columns.values()]

    @classmethod
    def from_column_buffers(
        cls, meta: Mapping[str, Any], buffers: Sequence[Any]
    ) -> "MetricsFrame":
        """Rebuild a frame from :meth:`column_buffers` metadata + raw bytes."""
        names_dtypes = meta["columns"]
        if len(buffers) != len(names_dtypes):
            raise ValueError(
                f"{len(buffers)} buffers for {len(names_dtypes)} columns"
            )
        columns = {
            name: np.frombuffer(buf, dtype=np.dtype(dtype_str)).copy()
            for (name, dtype_str), buf in zip(names_dtypes, buffers)
        }
        return cls(
            meta["kind"],
            columns,
            tuple(meta["label_vocab"]),
            tuple(meta["controller_vocab"]),
            tuple(meta["param_names"]),
            tuple(meta.get("class_names", ())),
        )

    def to_bytes(self) -> tuple[dict[str, Any], bytes]:
        """One contiguous payload of all column bytes (plus its metadata)."""
        meta, buffers = self.column_buffers()
        return meta, b"".join(array.tobytes() for array in buffers)

    @classmethod
    def from_bytes(cls, meta: Mapping[str, Any], payload: bytes) -> "MetricsFrame":
        """Rebuild a frame from a :meth:`to_bytes` payload."""
        view = memoryview(payload)
        buffers = []
        offset = 0
        for name, dtype_str in meta["columns"]:
            nbytes = np.dtype(dtype_str).itemsize * meta["rows"]
            buffers.append(view[offset : offset + nbytes])
            offset += nbytes
        return cls.from_column_buffers(meta, buffers)

    # ------------------------------------------------------------------
    def save_memmap(self, directory: str | Path) -> Path:
        """Persist the frame as a memory-mappable column directory.

        Layout (format ``MEMMAP_SCHEMA_VERSION``): a ``frame.json`` header
        carrying the schema version, kind, row count, vocabularies,
        parameter/class names and the ordered ``[name, dtype]`` column
        list, plus one raw little-endian ``colNNNNN.bin`` file per column
        (positional names sidestep any column-name/filesystem clashes).
        :meth:`open_memmap` maps the files back read-only, so a saved
        frame of any size can be reopened with constant resident memory.
        """
        path = Path(directory)
        path.mkdir(parents=True, exist_ok=True)
        meta, buffers = self.column_buffers()
        meta["schema_version"] = MEMMAP_SCHEMA_VERSION
        for index, array in enumerate(buffers):
            (path / f"col{index:05d}.bin").write_bytes(array.tobytes())
        header = json.dumps(meta, indent=2, sort_keys=True)
        (path / _MEMMAP_HEADER).write_text(header + "\n", encoding="utf-8")
        return path

    @classmethod
    def open_memmap(cls, directory: str | Path) -> "MetricsFrame":
        """Reopen a :meth:`save_memmap` directory as a memmap-backed frame.

        Columns are ``np.memmap(mode="r")`` views — the OS pages them in on
        demand, so opening (and selectively reading) a multi-gigabyte frame
        keeps resident memory constant.  The header's schema version and
        every column file's size are validated before mapping.
        """
        path = Path(directory)
        header = path / _MEMMAP_HEADER
        if not header.is_file():
            raise FileNotFoundError(
                f"{path} is not a saved frame (missing {_MEMMAP_HEADER})"
            )
        meta = json.loads(header.read_text(encoding="utf-8"))
        version = meta.get("schema_version")
        if version != MEMMAP_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported frame memmap schema version {version!r}; "
                f"this build reads version {MEMMAP_SCHEMA_VERSION}"
            )
        rows = int(meta["rows"])
        columns: dict[str, np.ndarray] = {}
        for index, (name, dtype_str) in enumerate(meta["columns"]):
            file = path / f"col{index:05d}.bin"
            dtype = np.dtype(dtype_str)
            expected = dtype.itemsize * rows
            actual = file.stat().st_size if file.is_file() else None
            if actual != expected:
                raise ValueError(
                    f"column file {file.name} holds {actual} bytes, "
                    f"expected {expected} for {rows} rows of {dtype_str}"
                )
            if rows:
                columns[name] = np.memmap(file, dtype=dtype, mode="r", shape=(rows,))
            else:
                columns[name] = np.empty(0, dtype=dtype)
        return cls(
            meta["kind"],
            columns,
            tuple(meta["label_vocab"]),
            tuple(meta["controller_vocab"]),
            tuple(meta["param_names"]),
            tuple(meta.get("class_names", ())),
        )


# ----------------------------------------------------------------------
# Shared-memory transport for the process pool
# ----------------------------------------------------------------------
def _unregister_from_resource_tracker(shm) -> None:
    """Hand ownership of a worker-created segment to the parent.

    The worker's resource tracker would otherwise unlink the segment when
    the worker exits — before the parent has read it.  The parent unlinks
    explicitly in :func:`unpack_frame`.
    """
    try:  # pragma: no cover - depends on multiprocessing internals
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


def pack_frame(frame: MetricsFrame) -> dict[str, Any]:
    """Serialise a frame into a shared-memory segment (bytes fallback).

    Returns a small picklable descriptor: the column schema plus either
    the segment name (``transport: "shm"``) or, where shared memory is
    unavailable, the raw payload itself (``transport: "bytes"``).  Either
    way the worker ships flat column buffers, never object trees.
    """
    meta, payload = frame.to_bytes()
    try:
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(create=True, size=max(len(payload), 1))
    except Exception:
        return {"transport": "bytes", "meta": meta, "payload": payload}
    try:
        shm.buf[: len(payload)] = payload
        _unregister_from_resource_tracker(shm)
        name = shm.name
    except BaseException:
        # A failed write must not strand the segment in /dev/shm.
        shm.close()
        try:
            shm.unlink()
        except Exception:  # pragma: no cover - best-effort cleanup
            pass
        raise
    shm.close()
    return {"transport": "shm", "meta": meta, "name": name, "nbytes": len(payload)}


def unpack_frame(packed: Mapping[str, Any]) -> MetricsFrame:
    """Rebuild a frame from a :func:`pack_frame` descriptor.

    Shared-memory segments are copied out, closed and unlinked here — the
    parent owns cleanup, so a completed reduce leaves nothing behind in
    ``/dev/shm``.
    """
    transport = packed.get("transport")
    if transport == "bytes":
        return MetricsFrame.from_bytes(packed["meta"], packed["payload"])
    if transport != "shm":
        raise ValueError(f"unknown frame transport {transport!r}")
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=packed["name"], create=False)
    try:
        payload = bytes(shm.buf[: packed["nbytes"]])
    finally:
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
    return MetricsFrame.from_bytes(packed["meta"], payload)


class FrameReducer:
    """Task reducer folding worker rows into shared-memory-backed frames.

    Implements the :class:`repro.simulation.executor.TaskReducer` protocol
    for :meth:`SweepExecutor.map_reduce`: workers fold their chunk of
    :class:`FrameRow` results into a chunk-local frame and pack it as raw
    column buffers (shared memory on the process pool); the parent unpacks
    and concatenates in task order.  ``merge(fold(chunk) for chunks)`` is
    exactly ``fold(all rows)``, so the reduced frame is identical for
    every backend, chunking and worker count.
    """

    def __init__(self, kind: str):
        if kind not in (BATCH_KIND, NETWORK_KIND):
            raise ValueError(f"unknown frame kind {kind!r}")
        self.kind = kind

    def fold(self, results: Iterable[FrameRow]) -> MetricsFrame:
        return MetricsFrame.from_rows(self.kind, results)

    def pack(self, partial: MetricsFrame) -> dict[str, Any]:
        return pack_frame(partial)

    def unpack(self, packed: Mapping[str, Any]) -> MetricsFrame:
        return unpack_frame(packed)

    def merge(self, partials: Sequence[MetricsFrame]) -> MetricsFrame:
        return MetricsFrame.concat(list(partials))


class FrameAccumulator:
    """Incremental, order-preserving fold of chunk frames.

    The executors' incremental ``map_reduce`` path absorbs each worker's
    chunk frame into one of these the moment it arrives (always in
    task-submission order).  Two modes:

    * **In-memory** (``spill_dir=None``): buffers the chunk frames and
      concatenates once in :meth:`finish` — literally
      :meth:`MetricsFrame.concat`, hence byte-identical to the buffered
      reduce by construction.
    * **Spill** (``spill_dir`` set): every absorbed chunk's columns are
      remapped into the running vocabularies and appended straight to the
      on-disk column files of the :meth:`MetricsFrame.save_memmap` format.
      Parent memory is bounded by the largest *chunk* (plus the running
      vocabularies), not the total row count; :meth:`finish` writes the
      header and reopens the directory as a read-only memmap-backed frame
      whose columns are byte-identical to the in-memory concat: the vocab
      merge (first-seen across chunks in task order), parameter/class
      union and NaN backfill replay ``concat``'s arithmetic exactly.
    """

    #: Backfill/append block, in rows — bounds resident memory while
    #: NaN-filling a late-appearing column over millions of prior rows.
    _BLOCK_ROWS = 1 << 20

    def __init__(self, kind: str, spill_dir: str | Path | None = None):
        if kind not in (BATCH_KIND, NETWORK_KIND):
            raise ValueError(f"unknown frame kind {kind!r}")
        self.kind = kind
        self._spill_dir = None if spill_dir is None else Path(spill_dir)
        self._frames: list[MetricsFrame] = []
        self._rows = 0
        self._label_vocab: dict[str, int] = {}
        self._controller_vocab: dict[str, int] = {}
        self._param_names: dict[str, None] = {}
        self._class_names: dict[str, None] = {}
        self._has_ordinals: bool | None = None
        self._files: dict[str, Any] = {}
        self._part_paths: dict[str, Path] = {}
        self._finished = False
        if self._spill_dir is not None:
            self._spill_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def absorb(self, frame: MetricsFrame) -> None:
        """Fold one chunk frame in; chunks must arrive in task order."""
        if self._finished:
            raise ValueError("cannot absorb into a finished accumulator")
        if frame.kind != self.kind:
            raise ValueError(
                f"cannot absorb a {frame.kind!r} frame into a {self.kind!r} "
                "accumulator"
            )
        if self._has_ordinals is None:
            self._has_ordinals = frame.has_ordinals
        elif frame.has_ordinals != self._has_ordinals:
            raise ValueError("cannot accumulate frames with and without ordinals")
        if self._spill_dir is None:
            self._frames.append(frame)
            return

        label_remap = self._remap(frame.label_vocab, self._label_vocab)
        controller_remap = self._remap(
            frame.controller_vocab, self._controller_vocab
        )
        for name in frame.param_names:
            self._param_names.setdefault(name, None)
        for name in frame.class_names:
            self._class_names.setdefault(name, None)

        chunk_rows = len(frame)
        chunk_columns = frame.columns
        for name, dtype in self._spec_items():
            handle = self._file_for(name, dtype)
            if name == "label":
                codes = chunk_columns[name]
                data = label_remap[codes] if len(label_remap) else codes
            elif name == "controller":
                codes = chunk_columns[name]
                data = controller_remap[codes] if len(controller_remap) else codes
            elif name in chunk_columns:
                data = chunk_columns[name]
            else:  # parameter/class column absent in this chunk
                data = np.full(chunk_rows, np.nan, dtype=np.float64)
            handle.write(np.ascontiguousarray(data, dtype=dtype).tobytes())
        self._rows += chunk_rows

    def finish(self) -> MetricsFrame:
        """Close out the fold and return the reduced frame.

        In-memory mode concatenates the buffered chunks; spill mode writes
        the ``frame.json`` header and reopens the directory memmap-backed.
        """
        if self._finished:
            raise ValueError("accumulator already finished")
        self._finished = True
        if self._spill_dir is None:
            return MetricsFrame.concat(self._frames)
        if self._has_ordinals is None:
            raise ValueError("cannot finish an accumulator that absorbed nothing")
        names = [name for name, _ in self._spec_items()]
        for handle in self._files.values():
            handle.close()
        for index, name in enumerate(names):
            self._part_paths[name].rename(self._spill_dir / f"col{index:05d}.bin")
        spec = MetricsFrame._column_spec(
            self.kind, tuple(self._param_names), tuple(self._class_names)
        )
        meta = {
            "schema_version": MEMMAP_SCHEMA_VERSION,
            "kind": self.kind,
            "rows": self._rows,
            "label_vocab": list(self._label_vocab),
            "controller_vocab": list(self._controller_vocab),
            "param_names": list(self._param_names),
            "class_names": list(self._class_names),
            "columns": [
                [name, np.dtype(spec.get(name, np.int64)).str] for name in names
            ],
        }
        header = json.dumps(meta, indent=2, sort_keys=True)
        (self._spill_dir / _MEMMAP_HEADER).write_text(header + "\n", encoding="utf-8")
        return MetricsFrame.open_memmap(self._spill_dir)

    # ------------------------------------------------------------------
    @staticmethod
    def _remap(source: Sequence[str], vocab: dict[str, int]) -> np.ndarray:
        for value in source:
            vocab.setdefault(value, len(vocab))
        return np.array([vocab[v] for v in source], dtype=np.int32)

    def _spec_items(self) -> list[tuple[str, Any]]:
        spec = MetricsFrame._column_spec(
            self.kind, tuple(self._param_names), tuple(self._class_names)
        )
        items = [(name, np.dtype(dtype)) for name, dtype in spec.items()]
        if self._has_ordinals:
            items.extend((name, np.dtype(np.int64)) for name in ORDINAL_COLUMNS)
        return items

    def _file_for(self, name: str, dtype: np.dtype):
        handle = self._files.get(name)
        if handle is None:
            # Sequential scratch names (column names may not be filesystem
            # safe); finish() renames them to positional colNNNNN.bin in
            # final schema order.
            path = self._spill_dir / f"part{len(self._part_paths):05d}.bin"
            handle = open(path, "wb")
            self._part_paths[name] = path
            self._files[name] = handle
            if self._rows:
                # Column appeared after earlier chunks: backfill NaN for
                # every row already written, block-wise to bound memory.
                remaining = self._rows
                while remaining:
                    block = min(remaining, self._BLOCK_ROWS)
                    handle.write(
                        np.full(block, np.nan, dtype=np.float64).tobytes()
                    )
                    remaining -= block
        return handle


class StreamingFrameReducer(FrameReducer):
    """Incremental-fold frame reducer for ``SweepExecutor.map_reduce``.

    Identical worker-side behaviour to :class:`FrameReducer` (fold chunk
    rows to a frame, ship raw column buffers), but the parent absorbs each
    chunk into a :class:`FrameAccumulator` as it arrives instead of
    buffering every partial for one final concat.  With ``spill_dir`` set,
    absorbed chunks stream to disk in the :meth:`MetricsFrame.save_memmap`
    format and the reduced frame comes back memmap-backed — parent memory
    stays constant in the number of tasks.  Either way the result is
    byte-identical to the buffered reduce on every backend at any worker
    count, because chunks are always absorbed in task-submission order.
    """

    incremental = True

    def __init__(self, kind: str, spill_dir: str | Path | None = None):
        super().__init__(kind)
        self.spill_dir = None if spill_dir is None else Path(spill_dir)

    def begin(self) -> FrameAccumulator:
        return FrameAccumulator(self.kind, spill_dir=self.spill_dir)

    def absorb(self, state: FrameAccumulator, partial: MetricsFrame) -> None:
        state.absorb(partial)

    def finalize(self, state: FrameAccumulator) -> MetricsFrame:
        return state.finish()
