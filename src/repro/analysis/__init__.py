"""Reporting utilities: statistics, ASCII tables/plots and CSV export."""

from .stats import SummaryStatistics, paired_difference, summarize, t_confidence_interval
from .tables import format_curve_table, format_table
from .plotting import ascii_heatmap, ascii_line_plot, ascii_membership_plot
from .io import read_sweep_csv, sweep_to_rows, write_sweep_csv

__all__ = [
    "SummaryStatistics",
    "summarize",
    "t_confidence_interval",
    "paired_difference",
    "format_table",
    "format_curve_table",
    "ascii_line_plot",
    "ascii_membership_plot",
    "ascii_heatmap",
    "sweep_to_rows",
    "write_sweep_csv",
    "read_sweep_csv",
]
