"""Reporting utilities: statistics, frames, ASCII tables/plots, CSV/JSON export.

The package exports resolve lazily (PEP 562).  That is deliberate, not an
optimisation: :mod:`repro.analysis.io` imports the sweep result types from
``repro.simulation.sweep``, while ``repro.simulation`` aggregates through
the columnar :mod:`repro.analysis.frame` — eagerly importing every
submodule here would close that loop into a circular import.  Lazy
resolution keeps both directions working: importing ``repro.analysis.frame``
never drags in the simulation layer, and importing ``repro.simulation``
never needs a fully-initialised ``repro.analysis``.
"""

from importlib import import_module

__all__ = [
    # stats
    "SummaryStatistics",
    "summarize",
    "t_confidence_interval",
    "paired_difference",
    "series_mean",
    "series_sample_std",
    # frame
    "MetricsFrame",
    "FrameGroup",
    "FrameReducer",
    "FrameRow",
    "run_result_row",
    "network_output_row",
    "pack_frame",
    "unpack_frame",
    # tables / plotting
    "format_table",
    "format_curve_table",
    "ascii_line_plot",
    "ascii_membership_plot",
    "ascii_heatmap",
    # io
    "sweep_to_rows",
    "write_sweep_csv",
    "read_sweep_csv",
    "sweep_result_to_dict",
    "sweep_result_from_dict",
    "network_sweep_result_to_dict",
    "network_sweep_result_from_dict",
    "metrics_frame_to_dict",
    "metrics_frame_from_dict",
    "write_result_json",
    "read_result_json",
]

#: Export name -> defining submodule.
_EXPORTS = {
    "SummaryStatistics": ".stats",
    "summarize": ".stats",
    "t_confidence_interval": ".stats",
    "paired_difference": ".stats",
    "series_mean": ".stats",
    "series_sample_std": ".stats",
    "MetricsFrame": ".frame",
    "FrameGroup": ".frame",
    "FrameReducer": ".frame",
    "FrameRow": ".frame",
    "run_result_row": ".frame",
    "network_output_row": ".frame",
    "pack_frame": ".frame",
    "unpack_frame": ".frame",
    "format_table": ".tables",
    "format_curve_table": ".tables",
    "ascii_line_plot": ".plotting",
    "ascii_membership_plot": ".plotting",
    "ascii_heatmap": ".plotting",
    "sweep_to_rows": ".io",
    "write_sweep_csv": ".io",
    "read_sweep_csv": ".io",
    "sweep_result_to_dict": ".io",
    "sweep_result_from_dict": ".io",
    "network_sweep_result_to_dict": ".io",
    "network_sweep_result_from_dict": ".io",
    "metrics_frame_to_dict": ".io",
    "metrics_frame_from_dict": ".io",
    "write_result_json": ".io",
    "read_result_json": ".io",
}

_SUBMODULES = ("frame", "io", "plotting", "stats", "tables")


def __getattr__(name: str):
    if name in _SUBMODULES:
        module = import_module(f".{name}", __name__)
        globals()[name] = module
        return module
    target = _EXPORTS.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(import_module(target, __name__), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__) | set(_SUBMODULES))
