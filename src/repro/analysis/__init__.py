"""Reporting utilities: statistics, ASCII tables/plots, CSV and JSON export."""

from .stats import SummaryStatistics, paired_difference, summarize, t_confidence_interval
from .tables import format_curve_table, format_table
from .plotting import ascii_heatmap, ascii_line_plot, ascii_membership_plot
from .io import (
    network_sweep_result_from_dict,
    network_sweep_result_to_dict,
    read_result_json,
    read_sweep_csv,
    sweep_result_from_dict,
    sweep_result_to_dict,
    sweep_to_rows,
    write_result_json,
    write_sweep_csv,
)

__all__ = [
    "SummaryStatistics",
    "summarize",
    "t_confidence_interval",
    "paired_difference",
    "format_table",
    "format_curve_table",
    "ascii_line_plot",
    "ascii_membership_plot",
    "ascii_heatmap",
    "sweep_to_rows",
    "write_sweep_csv",
    "read_sweep_csv",
    "sweep_result_to_dict",
    "sweep_result_from_dict",
    "network_sweep_result_to_dict",
    "network_sweep_result_from_dict",
    "write_result_json",
    "read_result_json",
]
