"""ASCII table rendering for benchmark and experiment output."""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_table", "format_curve_table"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render a plain-text table with aligned columns.

    Numeric cells are right-aligned and floats rendered with two decimals;
    everything else is left-aligned.
    """
    if not headers:
        raise ValueError("a table requires at least one column")
    rendered_rows: list[list[str]] = []
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row {row!r} has {len(row)} cells but the table has {len(headers)} columns"
            )
        rendered_rows.append([_render_cell(cell) for cell in row])

    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    lines: list[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * width for width in widths))
    for original, row in zip(rows, rendered_rows):
        cells = []
        for index, cell in enumerate(row):
            if isinstance(original[index], (int, float)) and not isinstance(original[index], bool):
                cells.append(cell.rjust(widths[index]))
            else:
                cells.append(cell.ljust(widths[index]))
        lines.append(" | ".join(cells))
    return "\n".join(lines)


def format_curve_table(
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    title: str = "",
) -> str:
    """Render curves sharing an x axis as one table (one column per curve)."""
    if not series:
        raise ValueError("at least one series is required")
    for label, values in series.items():
        if len(values) != len(x_values):
            raise ValueError(
                f"series {label!r} has {len(values)} points but the x axis has {len(x_values)}"
            )
    headers = [x_label, *series.keys()]
    rows = [
        [x, *[series[label][index] for label in series]]
        for index, x in enumerate(x_values)
    ]
    return format_table(headers, rows, title=title)


def _render_cell(cell: object) -> str:
    if isinstance(cell, bool):
        return str(cell)
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)
