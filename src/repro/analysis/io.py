"""CSV export/import of sweep results."""

from __future__ import annotations

import csv
from pathlib import Path

from ..simulation.sweep import SweepCurve, SweepPoint, SweepResult

__all__ = ["sweep_to_rows", "write_sweep_csv", "read_sweep_csv"]

_FIELDNAMES = (
    "sweep",
    "curve",
    "controller",
    "request_count",
    "acceptance_percentage",
    "std_percentage",
    "replications",
)


def sweep_to_rows(sweep: SweepResult) -> list[dict[str, object]]:
    """Flatten a sweep result into one dict per (curve, point)."""
    rows: list[dict[str, object]] = []
    for curve in sweep.curves:
        for point in curve.points:
            rows.append(
                {
                    "sweep": sweep.name,
                    "curve": curve.label,
                    "controller": curve.controller,
                    "request_count": point.request_count,
                    "acceptance_percentage": point.acceptance_percentage,
                    "std_percentage": point.std_percentage,
                    "replications": point.replications,
                }
            )
    return rows


def write_sweep_csv(sweep: SweepResult, path: str | Path) -> Path:
    """Write a sweep result to a CSV file and return the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=_FIELDNAMES)
        writer.writeheader()
        for row in sweep_to_rows(sweep):
            writer.writerow(row)
    return target


def read_sweep_csv(path: str | Path) -> SweepResult:
    """Read a sweep result previously written by :func:`write_sweep_csv`."""
    source = Path(path)
    curves: dict[str, dict[str, object]] = {}
    sweep_name = source.stem
    with source.open() as handle:
        reader = csv.DictReader(handle)
        missing = set(_FIELDNAMES) - set(reader.fieldnames or ())
        if missing:
            raise ValueError(f"CSV {source} is missing columns: {sorted(missing)}")
        for row in reader:
            sweep_name = row["sweep"]
            label = row["curve"]
            entry = curves.setdefault(
                label, {"controller": row["controller"], "points": []}
            )
            entry["points"].append(
                SweepPoint(
                    request_count=int(row["request_count"]),
                    acceptance_percentage=float(row["acceptance_percentage"]),
                    std_percentage=float(row["std_percentage"]),
                    replications=int(row["replications"]),
                )
            )
    if not curves:
        raise ValueError(f"CSV {source} contains no data rows")
    return SweepResult(
        name=sweep_name,
        curves=tuple(
            SweepCurve(
                label=label,
                controller=str(entry["controller"]),
                points=tuple(entry["points"]),  # type: ignore[arg-type]
            )
            for label, entry in curves.items()
        ),
    )
