"""CSV and JSON export/import of sweep results, plus payload schema versioning.

The CSV functions are the historical flat export of the acceptance sweeps.
The ``*_to_dict``/``*_from_dict`` pairs are the lossless JSON codecs the
unified scenario API (:mod:`repro.api`) uses for the machine-readable
``metrics`` half of every :class:`~repro.api.RunReport`.

This module is also the home of the *schema version* machinery shared by
every serialized API payload (``Scenario``, ``RunReport``, ``Campaign``,
``CampaignReport``): :data:`SCHEMA_VERSION` is the version new payloads are
stamped with, :func:`versioned_payload` stamps it, and
:func:`migrate_payload` upgrades older payloads on read — explicitly, one
version step at a time — while rejecting versions this build does not know
with a loud :class:`PayloadVersionError`.

Versioning policy
-----------------
* **v0** — the pre-versioning payloads of the first Scenario/Runner API
  (no ``schema_version`` key).  Still readable: the v0→v1 migration is the
  identity, because v1 only *added* the stamp.
* **v1** — the first stamped payloads (Campaign API era).
* **v2** — Adds the columnar :class:`~repro.analysis.frame.MetricsFrame`
  payload (``frame`` key inside sweep ``RunReport`` metrics, plus the
  standalone ``metrics-frame`` codec below) and the optional
  ``baseline``/``deltas`` comparison fields.  All additive, so the v1→v2
  migration is the identity.
* **v3** — Adds the ``network-sweep-coupled-sharded`` scenario
  kind (per-cell shard workers with message-passing handoffs) with its
  ``window_s``/``cell_capacities`` fields, and the ``handoff_coupling``
  provenance key inside network-sweep ``RunReport`` metrics.  All
  additive — old payloads simply lack the kind and the keys — so the
  v2→v3 migration is the identity.
* **v4** — Adds the ``flc-definition`` payload (declarative
  fuzzy-controller definitions, :mod:`repro.fuzzy.definition`), the
  ``tuning`` scenario kind and its ``tuning`` ``RunReport`` metrics
  payload (:mod:`repro.tuning`).  All additive — old payloads simply
  lack the kind and the codecs — so the v3→v4 migration is the
  identity.
* **v5** — Adds the ``workload`` payload (arrival-process
  models and service classes, :mod:`repro.workloads`), the optional
  ``workload`` field on scenario payloads, and the optional
  ``class_names``/``class.*`` per-class counter columns inside
  ``metrics-frame`` payloads.  All additive — old payloads simply lack
  the field and the columns — so the v4→v5 migration is the identity.
* **v6** — current.  Adds the optional ``stream`` field on
  ``trace-arrivals`` scenarios (the frame-native columnar fast path of
  :func:`repro.simulation.trace.run_trace_arrivals`) and the on-disk
  memmap frame directory format
  (:meth:`repro.analysis.frame.MetricsFrame.save_memmap`, versioned
  separately by its own header).  All additive — ``stream`` is omitted
  from payloads while ``False`` — so the v5→v6 migration is the
  identity.
* Future breaking field changes must bump :data:`SCHEMA_VERSION` and add a
  migration step to :data:`_MIGRATIONS`; decoding a payload newer than the
  running build always fails loudly rather than guessing.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Mapping

import numpy as np

from ..fuzzy.definition import DefinitionError, FLCDefinition
from ..simulation.sweep import (
    NetworkSweepCurve,
    NetworkSweepPoint,
    NetworkSweepResult,
    SweepCurve,
    SweepPoint,
    SweepResult,
)
from .frame import MetricsFrame

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..workloads.spec import WorkloadSpec

__all__ = [
    "SCHEMA_VERSION",
    "PayloadVersionError",
    "versioned_payload",
    "migrate_payload",
    "write_guarded_json",
    "sweep_to_rows",
    "write_sweep_csv",
    "read_sweep_csv",
    "sweep_result_to_dict",
    "sweep_result_from_dict",
    "network_sweep_result_to_dict",
    "network_sweep_result_from_dict",
    "metrics_frame_to_dict",
    "metrics_frame_from_dict",
    "flc_definition_to_dict",
    "flc_definition_from_dict",
    "flc_definition_to_json",
    "write_flc_definition_json",
    "read_flc_definition_json",
    "workload_to_dict",
    "workload_from_dict",
    "workload_to_json",
    "write_workload_json",
    "read_workload_json",
    "write_result_json",
    "read_result_json",
]

# ----------------------------------------------------------------------
# Payload schema versioning
# ----------------------------------------------------------------------
#: Version stamped into every newly serialized API payload.
SCHEMA_VERSION = 6


class PayloadVersionError(ValueError):
    """Raised when a payload's ``schema_version`` cannot be handled."""


def versioned_payload(payload: dict[str, Any]) -> dict[str, Any]:
    """Return ``payload`` with the current ``schema_version`` stamped first."""
    return {"schema_version": SCHEMA_VERSION, **payload}


def _migrate_v0_to_v1(payload: dict[str, Any]) -> dict[str, Any]:
    """v0 → v1: the identity — v1 only added the ``schema_version`` stamp."""
    return payload


def _migrate_v1_to_v2(payload: dict[str, Any]) -> dict[str, Any]:
    """v1 → v2: the identity — v2 only *added* fields.

    New in v2: the optional ``frame`` payload (columnar MetricsFrame)
    inside sweep run-report metrics, and the optional ``baseline`` /
    per-row ``deltas`` fields of campaign comparisons.  Old payloads
    simply lack them, and every decoder treats the fields as optional.
    """
    return payload


def _migrate_v2_to_v3(payload: dict[str, Any]) -> dict[str, Any]:
    """v2 → v3: the identity — v3 only *added* fields.

    New in v3: the ``network-sweep-coupled-sharded`` scenario kind (with
    ``window_s`` and ``cell_capacities``) and the optional
    ``handoff_coupling`` provenance key in network-sweep report metrics.
    Old payloads simply lack them, and every decoder treats them as
    optional.
    """
    return payload


def _migrate_v3_to_v4(payload: dict[str, Any]) -> dict[str, Any]:
    """v3 → v4: the identity — v4 only *added* payload kinds.

    New in v4: the ``flc-definition`` codec (declarative fuzzy-controller
    definitions) and the ``tuning`` scenario kind with its report
    metrics payload.  Old payloads simply lack them.
    """
    return payload


def _migrate_v4_to_v5(payload: dict[str, Any]) -> dict[str, Any]:
    """v4 → v5: the identity — v5 only *added* fields.

    New in v5: the ``workload`` codec (:mod:`repro.workloads`), the
    optional ``workload`` field on scenario payloads, and the optional
    per-class counter columns (``class_names`` plus ``class.*`` columns)
    inside ``metrics-frame`` payloads.  Old payloads simply lack them,
    and every decoder treats them as optional.
    """
    return payload


def _migrate_v5_to_v6(payload: dict[str, Any]) -> dict[str, Any]:
    """v5 → v6: the identity — v6 only *added* fields.

    New in v6: the optional ``stream`` field on ``trace-arrivals``
    scenario payloads (omitted while ``False``) and the standalone
    memmap frame directory format.  Old payloads simply lack the field,
    and the decoder fills it from the dataclass default.
    """
    return payload


#: Migration steps: version ``n`` → the function upgrading ``n`` to ``n+1``.
_MIGRATIONS: dict[int, Callable[[dict[str, Any]], dict[str, Any]]] = {
    0: _migrate_v0_to_v1,
    1: _migrate_v1_to_v2,
    2: _migrate_v2_to_v3,
    3: _migrate_v3_to_v4,
    4: _migrate_v4_to_v5,
    5: _migrate_v5_to_v6,
}


def migrate_payload(payload: Mapping[str, Any], what: str) -> dict[str, Any]:
    """Upgrade a payload to the current schema, dropping the version key.

    A payload without a ``schema_version`` key is treated as **v0** (the
    pre-versioning format).  Versions newer than :data:`SCHEMA_VERSION`,
    negative versions and non-integer versions raise
    :class:`PayloadVersionError` naming the payload and the versions this
    build can read — never a silent best-effort parse.
    """
    data = dict(payload)
    version = data.pop("schema_version", 0)
    if not isinstance(version, int) or isinstance(version, bool):
        raise PayloadVersionError(
            f"{what} schema_version must be an integer, got {version!r}"
        )
    if version < 0 or version > SCHEMA_VERSION:
        raise PayloadVersionError(
            f"unknown {what} schema_version {version}; this build reads "
            f"versions 0..{SCHEMA_VERSION} (0 = pre-versioning payloads). "
            f"Upgrade the package to read newer payloads."
        )
    for step in range(version, SCHEMA_VERSION):
        data = _MIGRATIONS[step](data)
    return data


def write_guarded_json(
    target: Path,
    payload_text: str,
    holds_same_spec: Callable[[dict], bool],
    error_cls: type[Exception],
    what: str,
) -> Path:
    """Write ``payload_text`` to ``target``, refusing to clobber foreign files.

    Re-saving over a file whose embedded spec satisfies
    ``holds_same_spec`` overwrites (runs are deterministic); anything else
    at the target — a different spec, unparsable JSON, a non-report —
    raises ``error_cls`` instead of being silently replaced.  Shared by
    :meth:`repro.api.RunReport.save` and
    :meth:`repro.api.CampaignReport.save`.
    """
    if target.exists():
        try:
            existing = json.loads(target.read_text())
            same = holds_same_spec(existing)
        except (OSError, ValueError, KeyError, TypeError):
            # ValueError covers JSONDecodeError and the decode errors of
            # the embedded spec (ScenarioError/CampaignError subclass it).
            same = False
        if not same:
            raise error_cls(
                f"refusing to overwrite {target}: it does not hold a "
                f"report of this {what} (delete it or save elsewhere)"
            )
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(payload_text)
    return target


#: ``type`` discriminators stamped into the JSON payloads.
_SWEEP_TYPE = "acceptance-sweep"
_NETWORK_SWEEP_TYPE = "network-sweep"

_FIELDNAMES = (
    "sweep",
    "curve",
    "controller",
    "request_count",
    "acceptance_percentage",
    "std_percentage",
    "replications",
)


def sweep_to_rows(sweep: SweepResult) -> list[dict[str, object]]:
    """Flatten a sweep result into one dict per (curve, point)."""
    rows: list[dict[str, object]] = []
    for curve in sweep.curves:
        for point in curve.points:
            rows.append(
                {
                    "sweep": sweep.name,
                    "curve": curve.label,
                    "controller": curve.controller,
                    "request_count": point.request_count,
                    "acceptance_percentage": point.acceptance_percentage,
                    "std_percentage": point.std_percentage,
                    "replications": point.replications,
                }
            )
    return rows


def write_sweep_csv(sweep: SweepResult, path: str | Path) -> Path:
    """Write a sweep result to a CSV file and return the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=_FIELDNAMES)
        writer.writeheader()
        for row in sweep_to_rows(sweep):
            writer.writerow(row)
    return target


def read_sweep_csv(path: str | Path) -> SweepResult:
    """Read a sweep result previously written by :func:`write_sweep_csv`."""
    source = Path(path)
    curves: dict[str, dict[str, object]] = {}
    sweep_name = source.stem
    with source.open() as handle:
        reader = csv.DictReader(handle)
        missing = set(_FIELDNAMES) - set(reader.fieldnames or ())
        if missing:
            raise ValueError(f"CSV {source} is missing columns: {sorted(missing)}")
        for row in reader:
            sweep_name = row["sweep"]
            label = row["curve"]
            entry = curves.setdefault(
                label, {"controller": row["controller"], "points": []}
            )
            entry["points"].append(
                SweepPoint(
                    request_count=int(row["request_count"]),
                    acceptance_percentage=float(row["acceptance_percentage"]),
                    std_percentage=float(row["std_percentage"]),
                    replications=int(row["replications"]),
                )
            )
    if not curves:
        raise ValueError(f"CSV {source} contains no data rows")
    return SweepResult(
        name=sweep_name,
        curves=tuple(
            SweepCurve(
                label=label,
                controller=str(entry["controller"]),
                points=tuple(entry["points"]),  # type: ignore[arg-type]
            )
            for label, entry in curves.items()
        ),
    )


# ----------------------------------------------------------------------
# JSON codecs (lossless, used by repro.api for RunReport metrics)
# ----------------------------------------------------------------------
def sweep_result_to_dict(sweep: SweepResult) -> dict:
    """Lossless dict form of an acceptance :class:`SweepResult`."""
    return {
        "type": _SWEEP_TYPE,
        "name": sweep.name,
        "curves": [
            {
                "label": curve.label,
                "controller": curve.controller,
                "points": [
                    {
                        "request_count": point.request_count,
                        "acceptance_percentage": point.acceptance_percentage,
                        "std_percentage": point.std_percentage,
                        "replications": point.replications,
                    }
                    for point in curve.points
                ],
            }
            for curve in sweep.curves
        ],
    }


def sweep_result_from_dict(payload: dict) -> SweepResult:
    """Rebuild a :class:`SweepResult` written by :func:`sweep_result_to_dict`."""
    if payload.get("type") != _SWEEP_TYPE:
        raise ValueError(
            f"expected a {_SWEEP_TYPE!r} payload, got type={payload.get('type')!r}"
        )
    return SweepResult(
        name=payload["name"],
        curves=tuple(
            SweepCurve(
                label=curve["label"],
                controller=curve["controller"],
                points=tuple(
                    SweepPoint(
                        request_count=int(point["request_count"]),
                        acceptance_percentage=float(point["acceptance_percentage"]),
                        std_percentage=float(point["std_percentage"]),
                        replications=int(point["replications"]),
                    )
                    for point in curve["points"]
                ),
            )
            for curve in payload["curves"]
        ),
    )


def network_sweep_result_to_dict(result: NetworkSweepResult) -> dict:
    """Lossless dict form of a multi-cell :class:`NetworkSweepResult`."""
    return {
        "type": _NETWORK_SWEEP_TYPE,
        "name": result.name,
        "curves": [
            {
                "label": curve.label,
                "controller": curve.controller,
                "points": [
                    {
                        "arrival_rate_per_cell_per_s": point.arrival_rate_per_cell_per_s,
                        "acceptance_percentage": point.acceptance_percentage,
                        "std_percentage": point.std_percentage,
                        "blocking_probability": point.blocking_probability,
                        "dropping_probability": point.dropping_probability,
                        "handoff_failure_ratio": point.handoff_failure_ratio,
                        "mean_occupancy_bu": point.mean_occupancy_bu,
                        "replications": point.replications,
                    }
                    for point in curve.points
                ],
            }
            for curve in result.curves
        ],
    }


def network_sweep_result_from_dict(payload: dict) -> NetworkSweepResult:
    """Rebuild a result written by :func:`network_sweep_result_to_dict`."""
    if payload.get("type") != _NETWORK_SWEEP_TYPE:
        raise ValueError(
            f"expected a {_NETWORK_SWEEP_TYPE!r} payload, got type={payload.get('type')!r}"
        )
    return NetworkSweepResult(
        name=payload["name"],
        curves=tuple(
            NetworkSweepCurve(
                label=curve["label"],
                controller=curve["controller"],
                points=tuple(
                    NetworkSweepPoint(
                        arrival_rate_per_cell_per_s=float(
                            point["arrival_rate_per_cell_per_s"]
                        ),
                        acceptance_percentage=float(point["acceptance_percentage"]),
                        std_percentage=float(point["std_percentage"]),
                        blocking_probability=float(point["blocking_probability"]),
                        dropping_probability=float(point["dropping_probability"]),
                        handoff_failure_ratio=float(point["handoff_failure_ratio"]),
                        mean_occupancy_bu=float(point["mean_occupancy_bu"]),
                        replications=int(point["replications"]),
                    )
                    for point in curve["points"]
                ),
            )
            for curve in payload["curves"]
        ),
    )


# ----------------------------------------------------------------------
# MetricsFrame codec (lossless, schema-versioned)
# ----------------------------------------------------------------------
_FRAME_TYPE = "metrics-frame"


def metrics_frame_to_dict(frame: MetricsFrame) -> dict:
    """Lossless, schema-versioned dict form of a :class:`MetricsFrame`.

    Columns serialise as plain JSON lists with their dtype strings; float
    values round-trip exactly (shortest-repr doubles) and NaN parameter
    slots encode as ``null``.
    """
    meta, buffers = frame.column_buffers()
    columns: dict[str, list] = {}
    for (name, _dtype), array in zip(meta["columns"], buffers):
        if array.dtype.kind == "f":
            columns[name] = [
                None if value != value else value for value in array.tolist()
            ]
        else:
            columns[name] = array.tolist()
    payload = {
        "type": _FRAME_TYPE,
        "kind": meta["kind"],
        "rows": meta["rows"],
        "label_vocab": meta["label_vocab"],
        "controller_vocab": meta["controller_vocab"],
        "param_names": meta["param_names"],
        "dtypes": {name: dtype for name, dtype in meta["columns"]},
        "columns": columns,
    }
    # Emitted only for workload frames, so legacy payloads stay
    # byte-identical to their pre-v5 form.
    if meta["class_names"]:
        payload["class_names"] = meta["class_names"]
    return versioned_payload(payload)


def metrics_frame_from_dict(payload: Mapping[str, Any]) -> MetricsFrame:
    """Rebuild a frame written by :func:`metrics_frame_to_dict`."""
    data = migrate_payload(payload, "metrics frame")
    if data.get("type") != _FRAME_TYPE:
        raise ValueError(
            f"expected a {_FRAME_TYPE!r} payload, got type={data.get('type')!r}"
        )
    columns: dict[str, np.ndarray] = {}
    for name, dtype_str in data["dtypes"].items():
        dtype = np.dtype(dtype_str)
        values = data["columns"][name]
        if dtype.kind == "f":
            values = [np.nan if value is None else value for value in values]
        columns[name] = np.array(values, dtype=dtype)
    return MetricsFrame(
        data["kind"],
        columns,
        tuple(data["label_vocab"]),
        tuple(data["controller_vocab"]),
        tuple(data["param_names"]),
        tuple(data.get("class_names", ())),
    )


# ----------------------------------------------------------------------
# FLC definition codec (lossless, schema-versioned)
# ----------------------------------------------------------------------
_FLC_DEFINITION_TYPE = "flc-definition"


def flc_definition_to_dict(definition: FLCDefinition) -> dict:
    """Lossless, schema-versioned dict form of an :class:`FLCDefinition`."""
    return versioned_payload({"type": _FLC_DEFINITION_TYPE, **definition.to_dict()})


def flc_definition_from_dict(payload: Mapping[str, Any]) -> FLCDefinition:
    """Rebuild a definition written by :func:`flc_definition_to_dict`."""
    data = migrate_payload(payload, "controller definition")
    if data.pop("type", None) != _FLC_DEFINITION_TYPE:
        raise ValueError(
            f"expected a {_FLC_DEFINITION_TYPE!r} payload, "
            f"got type={payload.get('type')!r}"
        )
    return FLCDefinition.from_dict(data)


def flc_definition_to_json(definition: FLCDefinition) -> str:
    """Canonical JSON text of a definition (byte-stable for a fixed input)."""
    return json.dumps(flc_definition_to_dict(definition), indent=2) + "\n"


def write_flc_definition_json(definition: FLCDefinition, path: str | Path) -> Path:
    """Write a controller definition to a JSON file."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(flc_definition_to_json(definition))
    return target


def read_flc_definition_json(path: str | Path) -> FLCDefinition:
    """Read a definition previously written by :func:`write_flc_definition_json`."""
    try:
        payload = json.loads(Path(path).read_text())
    except OSError as exc:
        raise DefinitionError(f"cannot read controller definition {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise DefinitionError(
            f"controller definition {path} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(payload, Mapping):
        raise DefinitionError(
            f"controller definition {path} must hold a JSON object, "
            f"got {type(payload).__name__}"
        )
    try:
        return flc_definition_from_dict(payload)
    except (ValueError, PayloadVersionError) as exc:
        raise DefinitionError(f"controller definition {path}: {exc}") from exc


# ----------------------------------------------------------------------
# Workload codec (lossless, schema-versioned)
# ----------------------------------------------------------------------
_WORKLOAD_TYPE = "workload"


def workload_to_dict(spec: "WorkloadSpec") -> dict:
    """Lossless, schema-versioned dict form of a :class:`WorkloadSpec`."""
    return versioned_payload({"type": _WORKLOAD_TYPE, **spec.to_dict()})


def workload_from_dict(payload: Mapping[str, Any]) -> "WorkloadSpec":
    """Rebuild a workload written by :func:`workload_to_dict`."""
    from ..workloads.spec import WorkloadSpec

    data = migrate_payload(payload, "workload")
    if data.pop("type", None) != _WORKLOAD_TYPE:
        raise ValueError(
            f"expected a {_WORKLOAD_TYPE!r} payload, "
            f"got type={payload.get('type')!r}"
        )
    return WorkloadSpec.from_dict(data)


def workload_to_json(spec: "WorkloadSpec") -> str:
    """Canonical JSON text of a workload (byte-stable for a fixed input)."""
    return json.dumps(workload_to_dict(spec), indent=2) + "\n"


def write_workload_json(spec: "WorkloadSpec", path: str | Path) -> Path:
    """Write a workload definition to a JSON file."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(workload_to_json(spec))
    return target


def read_workload_json(path: str | Path) -> "WorkloadSpec":
    """Read a workload previously written by :func:`write_workload_json`."""
    from ..workloads.spec import WorkloadError

    try:
        payload = json.loads(Path(path).read_text())
    except OSError as exc:
        raise WorkloadError(f"cannot read workload {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise WorkloadError(f"workload {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, Mapping):
        raise WorkloadError(
            f"workload {path} must hold a JSON object, got {type(payload).__name__}"
        )
    try:
        return workload_from_dict(payload)
    except (ValueError, PayloadVersionError) as exc:
        raise WorkloadError(f"workload {path}: {exc}") from exc


def write_result_json(result: SweepResult | NetworkSweepResult, path: str | Path) -> Path:
    """Write a sweep result (either family) to a JSON file."""
    if isinstance(result, NetworkSweepResult):
        payload = network_sweep_result_to_dict(result)
    elif isinstance(result, SweepResult):
        payload = sweep_result_to_dict(result)
    else:
        raise TypeError(
            f"expected SweepResult or NetworkSweepResult, got {type(result).__name__}"
        )
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2) + "\n")
    return target


def read_result_json(path: str | Path) -> SweepResult | NetworkSweepResult:
    """Read a result previously written by :func:`write_result_json`."""
    payload = json.loads(Path(path).read_text())
    kind = payload.get("type")
    if kind == _SWEEP_TYPE:
        return sweep_result_from_dict(payload)
    if kind == _NETWORK_SWEEP_TYPE:
        return network_sweep_result_from_dict(payload)
    raise ValueError(f"unknown result payload type {kind!r} in {path}")
