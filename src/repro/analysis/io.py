"""CSV and JSON export/import of sweep results.

The CSV functions are the historical flat export of the acceptance sweeps.
The ``*_to_dict``/``*_from_dict`` pairs are the lossless JSON codecs the
unified scenario API (:mod:`repro.api`) uses for the machine-readable
``metrics`` half of every :class:`~repro.api.RunReport`.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from ..simulation.sweep import (
    NetworkSweepCurve,
    NetworkSweepPoint,
    NetworkSweepResult,
    SweepCurve,
    SweepPoint,
    SweepResult,
)

__all__ = [
    "sweep_to_rows",
    "write_sweep_csv",
    "read_sweep_csv",
    "sweep_result_to_dict",
    "sweep_result_from_dict",
    "network_sweep_result_to_dict",
    "network_sweep_result_from_dict",
    "write_result_json",
    "read_result_json",
]

#: ``type`` discriminators stamped into the JSON payloads.
_SWEEP_TYPE = "acceptance-sweep"
_NETWORK_SWEEP_TYPE = "network-sweep"

_FIELDNAMES = (
    "sweep",
    "curve",
    "controller",
    "request_count",
    "acceptance_percentage",
    "std_percentage",
    "replications",
)


def sweep_to_rows(sweep: SweepResult) -> list[dict[str, object]]:
    """Flatten a sweep result into one dict per (curve, point)."""
    rows: list[dict[str, object]] = []
    for curve in sweep.curves:
        for point in curve.points:
            rows.append(
                {
                    "sweep": sweep.name,
                    "curve": curve.label,
                    "controller": curve.controller,
                    "request_count": point.request_count,
                    "acceptance_percentage": point.acceptance_percentage,
                    "std_percentage": point.std_percentage,
                    "replications": point.replications,
                }
            )
    return rows


def write_sweep_csv(sweep: SweepResult, path: str | Path) -> Path:
    """Write a sweep result to a CSV file and return the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=_FIELDNAMES)
        writer.writeheader()
        for row in sweep_to_rows(sweep):
            writer.writerow(row)
    return target


def read_sweep_csv(path: str | Path) -> SweepResult:
    """Read a sweep result previously written by :func:`write_sweep_csv`."""
    source = Path(path)
    curves: dict[str, dict[str, object]] = {}
    sweep_name = source.stem
    with source.open() as handle:
        reader = csv.DictReader(handle)
        missing = set(_FIELDNAMES) - set(reader.fieldnames or ())
        if missing:
            raise ValueError(f"CSV {source} is missing columns: {sorted(missing)}")
        for row in reader:
            sweep_name = row["sweep"]
            label = row["curve"]
            entry = curves.setdefault(
                label, {"controller": row["controller"], "points": []}
            )
            entry["points"].append(
                SweepPoint(
                    request_count=int(row["request_count"]),
                    acceptance_percentage=float(row["acceptance_percentage"]),
                    std_percentage=float(row["std_percentage"]),
                    replications=int(row["replications"]),
                )
            )
    if not curves:
        raise ValueError(f"CSV {source} contains no data rows")
    return SweepResult(
        name=sweep_name,
        curves=tuple(
            SweepCurve(
                label=label,
                controller=str(entry["controller"]),
                points=tuple(entry["points"]),  # type: ignore[arg-type]
            )
            for label, entry in curves.items()
        ),
    )


# ----------------------------------------------------------------------
# JSON codecs (lossless, used by repro.api for RunReport metrics)
# ----------------------------------------------------------------------
def sweep_result_to_dict(sweep: SweepResult) -> dict:
    """Lossless dict form of an acceptance :class:`SweepResult`."""
    return {
        "type": _SWEEP_TYPE,
        "name": sweep.name,
        "curves": [
            {
                "label": curve.label,
                "controller": curve.controller,
                "points": [
                    {
                        "request_count": point.request_count,
                        "acceptance_percentage": point.acceptance_percentage,
                        "std_percentage": point.std_percentage,
                        "replications": point.replications,
                    }
                    for point in curve.points
                ],
            }
            for curve in sweep.curves
        ],
    }


def sweep_result_from_dict(payload: dict) -> SweepResult:
    """Rebuild a :class:`SweepResult` written by :func:`sweep_result_to_dict`."""
    if payload.get("type") != _SWEEP_TYPE:
        raise ValueError(
            f"expected a {_SWEEP_TYPE!r} payload, got type={payload.get('type')!r}"
        )
    return SweepResult(
        name=payload["name"],
        curves=tuple(
            SweepCurve(
                label=curve["label"],
                controller=curve["controller"],
                points=tuple(
                    SweepPoint(
                        request_count=int(point["request_count"]),
                        acceptance_percentage=float(point["acceptance_percentage"]),
                        std_percentage=float(point["std_percentage"]),
                        replications=int(point["replications"]),
                    )
                    for point in curve["points"]
                ),
            )
            for curve in payload["curves"]
        ),
    )


def network_sweep_result_to_dict(result: NetworkSweepResult) -> dict:
    """Lossless dict form of a multi-cell :class:`NetworkSweepResult`."""
    return {
        "type": _NETWORK_SWEEP_TYPE,
        "name": result.name,
        "curves": [
            {
                "label": curve.label,
                "controller": curve.controller,
                "points": [
                    {
                        "arrival_rate_per_cell_per_s": point.arrival_rate_per_cell_per_s,
                        "acceptance_percentage": point.acceptance_percentage,
                        "std_percentage": point.std_percentage,
                        "blocking_probability": point.blocking_probability,
                        "dropping_probability": point.dropping_probability,
                        "handoff_failure_ratio": point.handoff_failure_ratio,
                        "mean_occupancy_bu": point.mean_occupancy_bu,
                        "replications": point.replications,
                    }
                    for point in curve.points
                ],
            }
            for curve in result.curves
        ],
    }


def network_sweep_result_from_dict(payload: dict) -> NetworkSweepResult:
    """Rebuild a result written by :func:`network_sweep_result_to_dict`."""
    if payload.get("type") != _NETWORK_SWEEP_TYPE:
        raise ValueError(
            f"expected a {_NETWORK_SWEEP_TYPE!r} payload, got type={payload.get('type')!r}"
        )
    return NetworkSweepResult(
        name=payload["name"],
        curves=tuple(
            NetworkSweepCurve(
                label=curve["label"],
                controller=curve["controller"],
                points=tuple(
                    NetworkSweepPoint(
                        arrival_rate_per_cell_per_s=float(
                            point["arrival_rate_per_cell_per_s"]
                        ),
                        acceptance_percentage=float(point["acceptance_percentage"]),
                        std_percentage=float(point["std_percentage"]),
                        blocking_probability=float(point["blocking_probability"]),
                        dropping_probability=float(point["dropping_probability"]),
                        handoff_failure_ratio=float(point["handoff_failure_ratio"]),
                        mean_occupancy_bu=float(point["mean_occupancy_bu"]),
                        replications=int(point["replications"]),
                    )
                    for point in curve["points"]
                ),
            )
            for curve in payload["curves"]
        ),
    )


def write_result_json(result: SweepResult | NetworkSweepResult, path: str | Path) -> Path:
    """Write a sweep result (either family) to a JSON file."""
    if isinstance(result, NetworkSweepResult):
        payload = network_sweep_result_to_dict(result)
    elif isinstance(result, SweepResult):
        payload = sweep_result_to_dict(result)
    else:
        raise TypeError(
            f"expected SweepResult or NetworkSweepResult, got {type(result).__name__}"
        )
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2) + "\n")
    return target


def read_result_json(path: str | Path) -> SweepResult | NetworkSweepResult:
    """Read a result previously written by :func:`write_result_json`."""
    payload = json.loads(Path(path).read_text())
    kind = payload.get("type")
    if kind == _SWEEP_TYPE:
        return sweep_result_from_dict(payload)
    if kind == _NETWORK_SWEEP_TYPE:
        return network_sweep_result_from_dict(payload)
    raise ValueError(f"unknown result payload type {kind!r} in {path}")
