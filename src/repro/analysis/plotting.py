"""ASCII line plots (matplotlib is not available offline).

The benches use these to render the shape of each figure directly in the
terminal, so "who wins and where the crossover falls" is visible without any
plotting dependency.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["ascii_line_plot", "ascii_membership_plot"]

_MARKERS = "ox+*#@%&"


def ascii_line_plot(
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
    width: int = 70,
    height: int = 20,
    y_label: str = "",
    x_label: str = "",
    title: str = "",
) -> str:
    """Render one or more series against a shared x axis as an ASCII plot."""
    if not series:
        raise ValueError("at least one series is required")
    if width < 10 or height < 5:
        raise ValueError(f"plot area too small: {width}x{height}")
    for label, values in series.items():
        if len(values) != len(x_values):
            raise ValueError(
                f"series {label!r} has {len(values)} points but the x axis has {len(x_values)}"
            )
    if len(x_values) < 2:
        raise ValueError("at least two x values are required")

    all_y = [v for values in series.values() for v in values]
    y_min, y_max = min(all_y), max(all_y)
    if y_max - y_min < 1e-12:
        y_min -= 1.0
        y_max += 1.0
    x_min, x_max = min(x_values), max(x_values)
    if x_max - x_min < 1e-12:
        raise ValueError("x values are all identical")

    grid = [[" " for _ in range(width)] for _ in range(height)]

    def to_col(x: float) -> int:
        return int(round((x - x_min) / (x_max - x_min) * (width - 1)))

    def to_row(y: float) -> int:
        return int(round((y_max - y) / (y_max - y_min) * (height - 1)))

    for series_index, (label, values) in enumerate(series.items()):
        marker = _MARKERS[series_index % len(_MARKERS)]
        for x, y in zip(x_values, values):
            grid[to_row(y)][to_col(x)] = marker

    lines: list[str] = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        y_at_row = y_max - (y_max - y_min) * row_index / (height - 1)
        lines.append(f"{y_at_row:8.2f} |" + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(f"{'':9}{x_min:<10.1f}{x_label:^{max(width - 20, 0)}}{x_max:>10.1f}")
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]} = {label}" for i, label in enumerate(series)
    )
    lines.append("legend: " + legend)
    if y_label:
        lines.append(f"y axis: {y_label}")
    return "\n".join(lines)


def ascii_membership_plot(
    term_samples: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 70,
    height: int = 12,
    title: str = "",
) -> str:
    """Render membership functions (term -> list of (x, mu) samples)."""
    if not term_samples:
        raise ValueError("at least one term is required")
    xs = sorted({x for samples in term_samples.values() for x, _ in samples})
    series = {}
    for term, samples in term_samples.items():
        lookup = {x: mu for x, mu in samples}
        series[term] = [lookup.get(x, 0.0) for x in xs]
    return ascii_line_plot(
        xs, series, width=width, height=height, y_label="membership", title=title
    )
