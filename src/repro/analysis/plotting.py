"""ASCII line plots (matplotlib is not available offline).

The benches use these to render the shape of each figure directly in the
terminal, so "who wins and where the crossover falls" is visible without any
plotting dependency.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["ascii_line_plot", "ascii_membership_plot", "ascii_heatmap"]

_MARKERS = "ox+*#@%&"

#: Density ramp of :func:`ascii_heatmap`, lightest to darkest.
_HEAT_RAMP = " .:-=+*#%@"


def ascii_line_plot(
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
    width: int = 70,
    height: int = 20,
    y_label: str = "",
    x_label: str = "",
    title: str = "",
) -> str:
    """Render one or more series against a shared x axis as an ASCII plot."""
    if not series:
        raise ValueError("at least one series is required")
    if width < 10 or height < 5:
        raise ValueError(f"plot area too small: {width}x{height}")
    for label, values in series.items():
        if len(values) != len(x_values):
            raise ValueError(
                f"series {label!r} has {len(values)} points but the x axis has {len(x_values)}"
            )
    if len(x_values) < 2:
        raise ValueError("at least two x values are required")

    all_y = [v for values in series.values() for v in values]
    y_min, y_max = min(all_y), max(all_y)
    if y_max - y_min < 1e-12:
        y_min -= 1.0
        y_max += 1.0
    x_min, x_max = min(x_values), max(x_values)
    if x_max - x_min < 1e-12:
        raise ValueError("x values are all identical")

    grid = [[" " for _ in range(width)] for _ in range(height)]

    def to_col(x: float) -> int:
        return int(round((x - x_min) / (x_max - x_min) * (width - 1)))

    def to_row(y: float) -> int:
        return int(round((y_max - y) / (y_max - y_min) * (height - 1)))

    for series_index, (label, values) in enumerate(series.items()):
        marker = _MARKERS[series_index % len(_MARKERS)]
        for x, y in zip(x_values, values):
            grid[to_row(y)][to_col(x)] = marker

    lines: list[str] = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        y_at_row = y_max - (y_max - y_min) * row_index / (height - 1)
        lines.append(f"{y_at_row:8.2f} |" + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(f"{'':9}{x_min:<10.1f}{x_label:^{max(width - 20, 0)}}{x_max:>10.1f}")
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]} = {label}" for i, label in enumerate(series)
    )
    lines.append("legend: " + legend)
    if y_label:
        lines.append(f"y axis: {y_label}")
    return "\n".join(lines)


def ascii_heatmap(
    x_values: Sequence[float],
    y_values: Sequence[float],
    values: Sequence[Sequence[float]],
    ramp: str = _HEAT_RAMP,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render a ``(len(y_values), len(x_values))`` grid as an ASCII heatmap.

    The natural companion of the engines' tensorized ``control_surface``:
    row ``i`` of ``values`` holds the outputs for ``y_values[i]`` across all
    ``x_values``, and darker ramp characters mean larger values.  Rows are
    printed top-down from the largest ``y`` so the orientation matches a
    conventional plot.
    """
    if len(ramp) < 2:
        raise ValueError("ramp needs at least two characters")
    if not len(x_values) or not len(y_values):
        raise ValueError("x and y axes must be non-empty")
    rows = [list(row) for row in values]
    if len(rows) != len(y_values) or any(len(row) != len(x_values) for row in rows):
        raise ValueError(
            f"values must form a {len(y_values)}x{len(x_values)} grid, "
            f"got {len(rows)} rows of lengths {sorted({len(row) for row in rows})}"
        )
    flat = [value for row in rows for value in row]
    v_min, v_max = min(flat), max(flat)
    span = v_max - v_min
    scale = (len(ramp) - 1) / span if span > 1e-12 else 0.0

    def shade(value: float) -> str:
        return ramp[int(round((value - v_min) * scale))]

    lines: list[str] = []
    if title:
        lines.append(title)
    for row_index in range(len(y_values) - 1, -1, -1):
        cells = "".join(shade(value) for value in rows[row_index])
        lines.append(f"{y_values[row_index]:8.2f} |{cells}")
    lines.append(" " * 9 + "+" + "-" * len(x_values))
    x_min, x_max = x_values[0], x_values[-1]
    if len(x_values) >= 22:
        # Wide grid: pin the endpoint values under the axis edges with the
        # label centred between them (mirrors ascii_line_plot).
        lines.append(
            f"{'':9}{x_min:<10.2f}{x_label:^{len(x_values) - 20}}{x_max:>10.2f}"
        )
    else:
        label = f"  {x_label}" if x_label else ""
        lines.append(f"{'':9}{x_min:g} .. {x_max:g} on x{label}")
    lines.append(
        f"scale: {ramp[0]!r} = {v_min:.3f} ... {ramp[-1]!r} = {v_max:.3f}"
        + (f"   ({y_label} on y)" if y_label else "")
    )
    return "\n".join(lines)


def ascii_membership_plot(
    term_samples: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 70,
    height: int = 12,
    title: str = "",
) -> str:
    """Render membership functions (term -> list of (x, mu) samples)."""
    if not term_samples:
        raise ValueError("at least one term is required")
    xs = sorted({x for samples in term_samples.values() for x, _ in samples})
    series = {}
    for term, samples in term_samples.items():
        lookup = {x: mu for x, mu in samples}
        series[term] = [lookup.get(x, 0.0) for x in xs]
    return ascii_line_plot(
        xs, series, width=width, height=height, y_label="membership", title=title
    )
