"""Compiled Mamdani inference: the rule base precompiled into numpy tensors.

:class:`MamdaniEngine` walks the rule base with a per-rule Python loop on
every ``infer`` — an interpreted evaluation that dominates the runtime of the
FACS simulations (two controllers, ~70 rules, one inference per admission
decision).  :class:`CompiledMamdaniEngine` performs the same computation with
a handful of vectorized operations by lowering the rule base at construction
time into

* an *antecedent index matrix* ``A`` of shape ``(n_rules, max_props)`` whose
  entries point into a flat vector of fuzzified membership degrees (rules
  with fewer propositions are padded with a slot pinned to ``1.0``, the
  identity of every t-norm), and
* one *consequent surface tensor* ``C`` of shape ``(n_entries, resolution)``
  per output variable, stacking the pre-sampled consequent term surfaces in
  rule order.

One inference is then: fill the degree vector (scalar fast paths for the
triangular/trapezoidal shapes the paper uses), gather ``A`` and fold the
t-norm across its columns to get all firing strengths at once, clip/scale the
fired rows of ``C`` and reduce them with the s-norm, and defuzzify.

The compiled engine is an exact drop-in: for the paper's minimum/maximum
operators the results are bit-for-bit identical to the reference engine, and
for every other registered operator family they agree to ~1 ulp (the only
difference is floating-point reassociation).  This is locked down by the
equivalence tests in ``tests/fuzzy/test_compiled_engine.py``.

Only rule bases whose rules are pure conjunctions of unhedged propositions
can be compiled (FRB1 and FRB2 both are); anything else raises
:class:`RuleCompilationError` so callers can fall back to the reference
engine.

An optional LRU cache memoises crisp inferences, keyed on the (optionally
quantized) input tuple.  With ``cache_quantization=None`` the keys are exact
and cached results are indistinguishable from recomputation; with a
quantization step the cache trades exactness for hit rate.

The engine is safe to share between threads: the scalar hot path keeps its
scratch degree buffer in thread-local storage and the LRU cache takes a lock
around its bookkeeping.  With exact cache keys the cached value equals
recomputation bit for bit, so results stay deterministic under the
thread-pool sweep executor; a *quantized* cache is the one knob that trades
that determinism away (whichever representative lands in the bucket first
wins), with or without threads.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from .defuzzification import (
    DEFAULT_DEFUZZIFIER,
    Centroid,
    DefuzzificationError,
    Defuzzifier,
)
from .inference import (
    BatchInference,
    ImplicationMethod,
    InferenceResult,
    MamdaniEngine,
    RuleActivation,
)
from .membership import Trapezoidal, Triangular
from .operators import MAXIMUM, MINIMUM, SNorm, TNorm
from .rules import RuleBase, _is_pure_conjunction, _propositions
from .variables import LinguisticVariable, Term

__all__ = [
    "CompiledMamdaniEngine",
    "CrispInference",
    "RuleCompilationError",
    "CacheInfo",
]

_EPS = 1e-12
# np.isclose defaults, replicated so the scalar fast paths match the array
# evaluation of Triangular bitwise.
_ISCLOSE_RTOL = 1e-5
_ISCLOSE_ATOL = 1e-8


class RuleCompilationError(ValueError):
    """Raised when a rule base cannot be lowered to the compiled form."""


@dataclass(frozen=True)
class CrispInference:
    """Lightweight inference outcome: crisp outputs plus the dominant rule.

    The fast-path counterpart of :class:`InferenceResult` — no per-rule
    activation records and no aggregated surfaces, so admission decisions in
    the simulator hot loop do not pay for diagnostics they never read.
    """

    outputs: Mapping[str, float]
    dominant_index: int
    dominant_label: str

    def __getitem__(self, variable: str) -> float:
        return self.outputs[variable]


@dataclass(frozen=True)
class CacheInfo:
    """Hit/miss statistics of the engine's crisp-inference LRU cache."""

    hits: int
    misses: int
    size: int
    max_size: int


def _isclose_scalar(x: float, target: float) -> bool:
    return abs(x - target) <= _ISCLOSE_ATOL + _ISCLOSE_RTOL * abs(target)


def _triangular_degree(x: float, a: float, b: float, c: float) -> float:
    """Scalar replica of ``Triangular.evaluate`` followed by the [0, 1] clip.

    Mirrors the array implementation branch for branch (including the
    ``np.isclose`` peak snapping) so the result is bit-identical to
    ``term.degree(x)``.
    """
    mu = 0.0
    left_width = b - a
    right_width = c - b
    if left_width > _EPS:
        if a < x < b:
            mu = (x - a) / left_width
    elif _isclose_scalar(x, b):
        mu = 1.0
    if right_width > _EPS and b <= x < c:
        mu = (c - x) / right_width
    if _isclose_scalar(x, b):
        mu = 1.0
    if left_width <= _EPS and x == b:
        mu = 1.0
    return min(max(mu, 0.0), 1.0)


def _trapezoidal_degree(x: float, a: float, b: float, c: float, d: float) -> float:
    """Scalar replica of ``Trapezoidal.evaluate`` followed by the [0, 1] clip."""
    mu = 0.0
    left_width = b - a
    right_width = d - c
    if left_width > _EPS and a < x < b:
        mu = (x - a) / left_width
    if right_width > _EPS and c < x < d:
        mu = (d - x) / right_width
    if b <= x <= c:
        mu = 1.0
    return min(max(mu, 0.0), 1.0)


def _term_evaluator(term: Term) -> Callable[[float], float]:
    """Return the fastest exact scalar evaluator for a term's membership."""
    mf = term.membership
    if type(mf) is Triangular:
        a, b, c = mf.a, mf.b, mf.c
        return lambda x: _triangular_degree(x, a, b, c)
    if type(mf) is Trapezoidal:
        a, b, c, d = mf.a, mf.b, mf.c, mf.d
        return lambda x: _trapezoidal_degree(x, a, b, c, d)
    return term.degree


class CompiledMamdaniEngine(MamdaniEngine):
    """Vectorized Mamdani engine, equivalent to :class:`MamdaniEngine`.

    Parameters
    ----------
    rule_base, tnorm, snorm, implication, defuzzifier:
        As for :class:`MamdaniEngine`.
    cache_size:
        Maximum number of crisp inferences memoised by the LRU cache;
        ``0`` (the default) disables caching.
    cache_quantization:
        Optional quantization step applied to the cache key.  ``None`` keys
        the cache on the exact input floats (cached results are then
        identical to recomputation); a positive step buckets nearby inputs
        together, trading exactness for hit rate.

    Raises
    ------
    RuleCompilationError
        When a rule uses OR/NOT connectives or hedges and therefore cannot
        be lowered to the index-matrix form.
    """

    def __init__(
        self,
        rule_base: RuleBase,
        tnorm: TNorm = MINIMUM,
        snorm: SNorm = MAXIMUM,
        implication: str = ImplicationMethod.CLIP,
        defuzzifier: Defuzzifier = DEFAULT_DEFUZZIFIER,
        cache_size: int = 0,
        cache_quantization: float | None = None,
    ):
        super().__init__(
            rule_base,
            tnorm=tnorm,
            snorm=snorm,
            implication=implication,
            defuzzifier=defuzzifier,
        )
        if cache_size < 0:
            raise ValueError(f"cache_size must be non-negative, got {cache_size}")
        if cache_quantization is not None and cache_quantization <= 0.0:
            raise ValueError(
                f"cache_quantization must be positive, got {cache_quantization}"
            )
        self._cache_size = cache_size
        self._cache_quantization = cache_quantization
        self._cache: OrderedDict[tuple, CrispInference] | None = (
            OrderedDict() if cache_size > 0 else None
        )
        self._cache_lock = threading.Lock()
        self._cache_hits = 0
        self._cache_misses = 0
        self._compile()

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def _compile(self) -> None:
        rule_base = self._rule_base
        self._input_order: list[str] = list(rule_base.input_variables)

        # Flat degree vector layout: one slot per (variable, term) in
        # variable order, plus a trailing slot pinned to 1.0 — the identity
        # of every t-norm — used to pad rules with fewer propositions.
        slot_of: dict[tuple[str, str], int] = {}
        fuzzify_plan: list[
            tuple[str, float, float, int, list[Callable[[float], float]]]
        ] = []
        n_slots = 0
        for name in self._input_order:
            variable = rule_base.input_variables[name]
            offset = n_slots
            evaluators: list[Callable[[float], float]] = []
            for term in variable:
                slot_of[(name, term.name)] = n_slots
                evaluators.append(_term_evaluator(term))
                n_slots += 1
            low, high = variable.universe
            fuzzify_plan.append((name, low, high, offset, evaluators))
        self._fuzzify_plan = fuzzify_plan
        # Array membership callables per variable, for the batched fuzzifier
        # (the scalar plan's closures replicate exactly these array paths).
        self._batch_fuzzify_plan = [
            (
                name,
                low,
                high,
                offset,
                [term.membership for term in rule_base.input_variables[name]],
            )
            for name, low, high, offset, _ in fuzzify_plan
        ]
        self._identity_slot = n_slots
        self._n_degree_slots = n_slots + 1
        # The scalar hot path reuses a scratch buffer; keeping it in
        # thread-local storage makes a shared engine safe under the
        # thread-pool sweep executor.
        self._degree_local = threading.local()

        rows: list[list[int]] = []
        for rule in rule_base:
            if not _is_pure_conjunction(rule.antecedent):
                raise RuleCompilationError(
                    f"rule {rule.label or rule} uses OR/NOT connectives; only pure "
                    f"conjunctions can be compiled — use MamdaniEngine instead"
                )
            props = _propositions(rule.antecedent)
            if any(prop.hedge is not None for prop in props):
                raise RuleCompilationError(
                    f"rule {rule.label or rule} uses hedges, which the compiled "
                    f"engine does not support — use MamdaniEngine instead"
                )
            rows.append([slot_of[(prop.variable, prop.term)] for prop in props])

        width = max(len(row) for row in rows)
        index = np.full((len(rows), width), self._identity_slot, dtype=np.intp)
        for i, row in enumerate(rows):
            index[i, : len(row)] = row
        self._antecedent_index = index
        self._antecedent_width = width

        weights = np.array([rule.weight for rule in rule_base], dtype=float)
        self._weights = weights
        self._trivial_weights = bool(np.all(weights == 1.0))

        # The centroid defuzzifier reduces to two trapezoid integrals over
        # the fixed output grid; precomputing the grid spacing and replaying
        # np.trapezoid's formula saves two np.diff calls per inference while
        # remaining bit-identical.  Only the exact Centroid type qualifies —
        # subclasses may override behaviour.
        self._fast_centroid = type(self._defuzzifier) is Centroid

        # Per output variable: (entry -> rule index, stacked surfaces, variable).
        plans: dict[str, tuple[np.ndarray, np.ndarray, LinguisticVariable]] = {}
        self._grid_diffs: dict[str, np.ndarray] = {}
        for var_name, variable in rule_base.output_variables.items():
            self._grid_diffs[var_name] = np.diff(variable.grid)
            surfaces: list[np.ndarray] = []
            entry_rules: list[int] = []
            for rule_index, rule in enumerate(rule_base):
                for consequent in rule.consequents:
                    if consequent.variable == var_name:
                        surfaces.append(self._output_term_surfaces[var_name][consequent.term])
                        entry_rules.append(rule_index)
            tensor = (
                np.ascontiguousarray(np.stack(surfaces))
                if surfaces
                else np.zeros((0, variable.resolution))
            )
            plans[var_name] = (np.asarray(entry_rules, dtype=np.intp), tensor, variable)
        self._consequent_plans = plans

        # Term-grouped consequent plans: the batched MAXIMUM-s-norm fast
        # path.  Rules sharing a consequent term have *identical* implication
        # surfaces, and with max as the s-norm the per-entry fold
        # ``max_e f(T, s_e)`` equals ``f(T, max_e s_e)`` for both
        # implications (min and scaling by a non-negative surface are
        # monotone selections/operations, so this is exact, not just
        # algebraically true) — the implication tensor shrinks from one row
        # per rule to one row per distinct term.  Each term's clipped
        # surface is exactly zero outside its membership support — the
        # identity of max — so aggregation touches only the support slice.
        grouped: dict[
            str, tuple[list[np.ndarray], list[np.ndarray], list[tuple[int, int]], int]
        ] = {}
        if self._snorm is MAXIMUM:
            for var_name, variable in rule_base.output_variables.items():
                term_rules: dict[str, list[int]] = {}
                for rule_index, rule in enumerate(rule_base):
                    for consequent in rule.consequents:
                        if consequent.variable == var_name:
                            term_rules.setdefault(consequent.term, []).append(rule_index)
                term_surfaces: list[np.ndarray] = []
                term_columns: list[np.ndarray] = []
                supports: list[tuple[int, int]] = []
                for term, rule_indices in term_rules.items():
                    surface = self._output_term_surfaces[var_name][term]
                    nonzero = np.flatnonzero(surface != 0.0)
                    start, stop = (
                        (int(nonzero[0]), int(nonzero[-1]) + 1) if nonzero.size else (0, 0)
                    )
                    term_surfaces.append(np.ascontiguousarray(surface[start:stop]))
                    term_columns.append(np.asarray(rule_indices, dtype=np.intp))
                    supports.append((start, stop))
                grouped[var_name] = (
                    term_surfaces,
                    term_columns,
                    supports,
                    int(variable.grid.shape[0]),
                )
        self._grouped_consequent_plans = grouped

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def cache_info(self) -> CacheInfo:
        """Current statistics of the crisp-inference LRU cache."""
        with self._cache_lock:
            return CacheInfo(
                hits=self._cache_hits,
                misses=self._cache_misses,
                size=len(self._cache) if self._cache is not None else 0,
                max_size=self._cache_size,
            )

    def clear_cache(self) -> None:
        """Drop every memoised inference and reset the hit/miss counters."""
        with self._cache_lock:
            if self._cache is not None:
                self._cache.clear()
            self._cache_hits = 0
            self._cache_misses = 0

    # ------------------------------------------------------------------
    # Hot path
    # ------------------------------------------------------------------
    @property
    def _degree_buffer(self) -> np.ndarray:
        """Per-thread scratch buffer for the scalar fuzzifier."""
        buffer = getattr(self._degree_local, "buffer", None)
        if buffer is None:
            buffer = np.empty(self._n_degree_slots, dtype=float)
            buffer[self._identity_slot] = 1.0
            self._degree_local.buffer = buffer
        return buffer

    def _fill_degrees(self, inputs: Mapping[str, float]) -> np.ndarray:
        buffer = self._degree_buffer
        try:
            for name, low, high, offset, evaluators in self._fuzzify_plan:
                value = float(inputs[name])
                if value < low:
                    value = low
                elif value > high:
                    value = high
                for k, evaluator in enumerate(evaluators):
                    buffer[offset + k] = evaluator(value)
        except KeyError:
            missing = set(self._rule_base.input_variables) - set(inputs)
            raise ValueError(
                f"missing crisp inputs for variables: {sorted(missing)}"
            ) from None
        return buffer

    def _firing_strengths(self, buffer: np.ndarray) -> np.ndarray:
        picked = buffer[self._antecedent_index]
        strengths = picked[:, 0]
        tnorm = self._tnorm
        for column in range(1, self._antecedent_width):
            strengths = np.asarray(tnorm(strengths, picked[:, column]))
        if not self._trivial_weights:
            strengths = self._weights * strengths
        return strengths

    def _aggregate_output(
        self,
        strengths: np.ndarray,
        entry_rules: np.ndarray,
        tensor: np.ndarray,
        var_name: str,
        inputs: Mapping[str, float],
    ) -> np.ndarray:
        entry_strengths = strengths[entry_rules]
        fired = entry_strengths > 0.0
        if not fired.any():
            raise DefuzzificationError(
                f"no rule fired for output variable {var_name!r} with inputs "
                f"{dict(inputs)!r}; the rule base does not cover this input region"
            )
        if fired.all():
            surfaces, fired_strengths = tensor, entry_strengths
        else:
            surfaces, fired_strengths = tensor[fired], entry_strengths[fired]
        if self._implication == ImplicationMethod.CLIP:
            clipped = np.minimum(surfaces, fired_strengths[:, None])
        else:
            clipped = surfaces * fired_strengths[:, None]
        if self._snorm is MAXIMUM:
            # Clipped surfaces are non-negative, so the axis reduction equals
            # the reference engine's fold from a zero surface bit-for-bit.
            return clipped.max(axis=0)
        aggregated = np.zeros(tensor.shape[1])
        snorm = self._snorm
        for row in clipped:
            aggregated = np.asarray(snorm(aggregated, row))
        return aggregated

    def _defuzzify_fast(
        self, var_name: str, variable: LinguisticVariable, surface: np.ndarray
    ) -> float:
        """Defuzzify an internally aggregated (hence valid) surface.

        The validating ``__call__`` wrapper is skipped — at least one rule
        fired, so the surface is in-range and non-zero.  For the exact
        :class:`Centroid` defuzzifier the two ``np.trapezoid`` integrals are
        replayed against the precomputed grid spacing, producing the same
        value bit-for-bit with fewer array passes.
        """
        if self._fast_centroid:
            grid = variable.grid
            spacing = self._grid_diffs[var_name]
            area = float((spacing * (surface[1:] + surface[:-1]) / 2.0).sum())
            if area <= _EPS:  # pragma: no cover - unreachable after aggregation
                raise DefuzzificationError("zero area under membership surface")
            moment = surface * grid
            return float((spacing * (moment[1:] + moment[:-1]) / 2.0).sum() / area)
        return float(self._defuzzifier.defuzzify(variable.grid, surface))

    def _cache_key(self, inputs: Mapping[str, float]) -> tuple:
        try:
            values = tuple(float(inputs[name]) for name in self._input_order)
        except KeyError:
            missing = set(self._rule_base.input_variables) - set(inputs)
            raise ValueError(
                f"missing crisp inputs for variables: {sorted(missing)}"
            ) from None
        quantization = self._cache_quantization
        if quantization is not None:
            return tuple(round(value / quantization) for value in values)
        return values

    def infer_crisp(self, inputs: Mapping[str, float]) -> CrispInference:
        """Crisp outputs plus dominant rule, skipping all diagnostics.

        This is the engine's hot path: identical numbers to :meth:`infer`
        without materialising per-rule activation records or surface dicts.
        """
        cache = self._cache
        if cache is not None:
            key = self._cache_key(inputs)
            with self._cache_lock:
                hit = cache.get(key)
                if hit is not None:
                    cache.move_to_end(key)
                    self._cache_hits += 1
                    return hit
        buffer = self._fill_degrees(inputs)
        strengths = self._firing_strengths(buffer)
        outputs: dict[str, float] = {}
        for var_name, (entry_rules, tensor, variable) in self._consequent_plans.items():
            aggregated = self._aggregate_output(strengths, entry_rules, tensor, var_name, inputs)
            outputs[var_name] = self._defuzzify_fast(var_name, variable, aggregated)
        dominant = int(np.argmax(strengths))
        result = CrispInference(
            outputs=outputs,
            dominant_index=dominant,
            dominant_label=self._rule_base[dominant].label,
        )
        if cache is not None:
            with self._cache_lock:
                self._cache_misses += 1
                cache[key] = result
                if len(cache) > self._cache_size:
                    cache.popitem(last=False)
        return result

    def infer(self, inputs: Mapping[str, float]) -> InferenceResult:
        """Full inference with the same diagnostics as the reference engine."""
        buffer = self._fill_degrees(inputs)
        degrees = {
            name: {
                term.name: float(buffer[offset + k])
                for k, term in enumerate(self._rule_base.input_variables[name])
            }
            for name, _, _, offset, _ in self._fuzzify_plan
        }
        strengths = self._firing_strengths(buffer)
        activations = tuple(
            RuleActivation(rule, float(strength))
            for rule, strength in zip(self._rule_base, strengths)
        )
        outputs: dict[str, float] = {}
        aggregated: dict[str, np.ndarray] = {}
        for var_name, (entry_rules, tensor, variable) in self._consequent_plans.items():
            surface = self._aggregate_output(strengths, entry_rules, tensor, var_name, inputs)
            aggregated[var_name] = surface
            outputs[var_name] = self._defuzzifier(variable.grid, surface)
        return InferenceResult(
            outputs=outputs,
            fuzzified_inputs=degrees,
            activations=activations,
            aggregated=aggregated,
        )

    # ------------------------------------------------------------------
    # Batched hot path
    # ------------------------------------------------------------------
    #: Upper bound on elements of the (rows, entries, grid) implication
    #: tensor materialised per block; rows are independent, so chunking
    #: changes peak memory but not a single bit of the results.
    _BATCH_BLOCK_ELEMENTS = 8_000_000

    def _fill_degrees_batch(self, matrix: np.ndarray) -> np.ndarray:
        """Fuzzify a whole ``(N, n_vars)`` matrix into ``(N, n_slots + 1)``.

        Uses the membership functions' array evaluation — the very path the
        scalar fast-path closures replicate branch for branch — so each row
        equals :meth:`_fill_degrees` on that row bit for bit.
        """
        degrees = np.empty((matrix.shape[0], self._n_degree_slots))
        degrees[:, self._identity_slot] = 1.0
        for k, (name, low, high, offset, memberships) in enumerate(self._batch_fuzzify_plan):
            values = np.clip(matrix[:, k], low, high)
            for j, membership in enumerate(memberships):
                degrees[:, offset + j] = np.clip(membership.evaluate(values), 0.0, 1.0)
        return degrees

    def _firing_strengths_batch(self, degrees: np.ndarray) -> np.ndarray:
        """All rules' firing strengths for all rows: ``(N, n_rules)``."""
        picked = degrees[:, self._antecedent_index]
        strengths = picked[:, :, 0]
        tnorm = self._tnorm
        for column in range(1, self._antecedent_width):
            strengths = np.asarray(tnorm(strengths, picked[:, :, column]))
        if not self._trivial_weights:
            strengths = self._weights * strengths
        return strengths

    def _aggregate_output_batch(
        self,
        strengths: np.ndarray,
        entry_rules: np.ndarray,
        tensor: np.ndarray,
        var_name: str,
        row_offset: int = 0,
    ) -> np.ndarray:
        """Aggregated output surfaces for all rows: ``(N, resolution)``.

        Rows where no entry fired would defuzzify garbage, so they raise just
        like the scalar path (``row_offset`` maps a block-local row back to
        its index in the caller's full batch).  Non-fired entries contribute
        an all-zero clipped surface, the identity of every s-norm, so folding
        over *all* entries equals the scalar path's fold over the fired
        subset.
        """
        grouped = self._grouped_consequent_plans.get(var_name)
        if grouped is not None:
            return self._aggregate_output_batch_grouped(
                strengths, grouped, var_name, row_offset
            )
        entry_strengths = strengths[:, entry_rules]
        fired_any = (entry_strengths > 0.0).any(axis=1)
        if not fired_any.all():
            row = row_offset + int(np.flatnonzero(~fired_any)[0])
            raise DefuzzificationError(
                f"no rule fired for output variable {var_name!r} at batch row "
                f"{row}; the rule base does not cover this input region"
            )
        if self._implication == ImplicationMethod.CLIP:
            clipped = np.minimum(tensor[None, :, :], entry_strengths[:, :, None])
        else:
            clipped = tensor[None, :, :] * entry_strengths[:, :, None]
        if self._snorm is MAXIMUM:
            return clipped.max(axis=1)
        aggregated = np.zeros((clipped.shape[0], clipped.shape[2]))
        snorm = self._snorm
        for entry in range(clipped.shape[1]):
            aggregated = np.asarray(snorm(aggregated, clipped[:, entry, :]))
        return aggregated

    @staticmethod
    def _term_strengths_batch(
        strengths: np.ndarray, term_columns: list[np.ndarray]
    ) -> np.ndarray:
        """Per-consequent-term maximum firing strengths: ``(N, n_terms)``.

        With the MAXIMUM s-norm a term's effective clip level is the maximum
        strength over the rules concluding in it; strengths are non-negative,
        so ``any(term > 0)`` is also exactly the per-entry fired check.
        """
        count = strengths.shape[0]
        term_strengths = np.empty((count, len(term_columns)))
        for t, columns in enumerate(term_columns):
            if columns.size == 1:
                term_strengths[:, t] = strengths[:, columns[0]]
            else:
                strengths[:, columns].max(axis=1, out=term_strengths[:, t])
        return term_strengths

    def _aggregate_output_batch_grouped(
        self,
        strengths: np.ndarray,
        grouped: tuple[
            list[np.ndarray], list[np.ndarray], list[tuple[int, int]], int
        ],
        var_name: str,
        row_offset: int,
    ) -> np.ndarray:
        """:meth:`_aggregate_output_batch` via the term-grouped plan.

        Bit-identical to the per-entry fold: strengths are non-negative, so
        the term strength ``max_e s_e`` selects the entry that would win the
        element-wise maximum anyway (min against a fixed surface and scaling
        by a non-negative surface are both monotone in the strength), and
        outside a term's support its clipped surface is exactly ``0.0`` —
        the identity the zero-initialised accumulator already holds.
        """
        term_surfaces, term_columns, supports, grid_length = grouped
        count = strengths.shape[0]
        term_strengths = self._term_strengths_batch(strengths, term_columns)
        fired_any = (term_strengths > 0.0).any(axis=1)
        if not fired_any.all():
            row = row_offset + int(np.flatnonzero(~fired_any)[0])
            raise DefuzzificationError(
                f"no rule fired for output variable {var_name!r} at batch row "
                f"{row}; the rule base does not cover this input region"
            )
        aggregated = np.zeros((count, grid_length))
        clip = self._implication == ImplicationMethod.CLIP
        for t, (start, stop) in enumerate(supports):
            if start == stop:
                continue
            column = term_strengths[:, t, None]
            if clip:
                contribution = np.minimum(term_surfaces[t], column)
            else:
                contribution = term_surfaces[t] * column
            window = aggregated[:, start:stop]
            np.maximum(window, contribution, out=window)
        return aggregated

    def _defuzzify_fast_batch(
        self, var_name: str, variable: LinguisticVariable, surfaces: np.ndarray
    ) -> np.ndarray:
        """Row-wise :meth:`_defuzzify_fast` over ``(N, resolution)`` surfaces."""
        if self._fast_centroid:
            grid = variable.grid
            spacing = self._grid_diffs[var_name]
            # In-place temporaries; every operation and reduction order is
            # exactly the scalar fast path's (multiplication commutes bit
            # for bit), so the results stay bit-identical.
            trapezoids = surfaces[:, 1:] + surfaces[:, :-1]
            trapezoids *= spacing
            trapezoids /= 2.0
            areas = trapezoids.sum(axis=1)
            if np.any(areas <= _EPS):  # pragma: no cover - unreachable
                raise DefuzzificationError("zero area under membership surface")
            moments = surfaces * grid
            trapezoids = moments[:, 1:] + moments[:, :-1]
            trapezoids *= spacing
            trapezoids /= 2.0
            centroids = trapezoids.sum(axis=1)
            centroids /= areas
            return centroids
        return np.array([self._defuzzifier(variable.grid, row) for row in surfaces])

    def _infer_batch_block(
        self, matrix: np.ndarray, row_offset: int = 0
    ) -> tuple[dict[str, np.ndarray], np.ndarray]:
        degrees = self._fill_degrees_batch(matrix)
        strengths = self._firing_strengths_batch(degrees)
        outputs: dict[str, np.ndarray] = {}
        for var_name, (entry_rules, tensor, variable) in self._consequent_plans.items():
            aggregated = self._aggregate_output_batch(
                strengths, entry_rules, tensor, var_name, row_offset=row_offset
            )
            outputs[var_name] = self._defuzzify_fast_batch(var_name, variable, aggregated)
        return outputs, np.argmax(strengths, axis=1)

    def infer_batch(
        self, inputs: np.ndarray | Mapping[str, np.ndarray]
    ) -> BatchInference:
        """Tensorized batch inference, bit-identical to per-row :meth:`infer`.

        The whole batch flows through the compiled antecedent/consequent
        tensors in a handful of vectorized passes; processing happens in
        blocks bounding peak memory, which cannot change results because rows
        are mutually independent.
        """
        matrix = self._batch_matrix(inputs)
        count = matrix.shape[0]
        max_entries = max(
            (plan[1].shape[0] * plan[1].shape[1] for plan in self._consequent_plans.values()),
            default=1,
        )
        if self._grouped_consequent_plans:
            # The grouped path never materialises the full implication
            # tensor; its per-row footprint is one aggregated surface plus
            # one support-sliced contribution.
            max_entries = max(
                (
                    grid_length + max((stop - start for start, stop in supports), default=0)
                    for _, _, supports, grid_length in self._grouped_consequent_plans.values()
                ),
                default=1,
            )
        block = max(1, self._BATCH_BLOCK_ELEMENTS // max(max_entries, 1))
        if count <= block:
            outputs, dominant = self._infer_batch_block(matrix)
            return BatchInference(outputs=outputs, dominant_indices=dominant)
        output_blocks: list[dict[str, np.ndarray]] = []
        dominant_blocks: list[np.ndarray] = []
        for start in range(0, count, block):
            outputs, dominant = self._infer_batch_block(
                matrix[start : start + block], row_offset=start
            )
            output_blocks.append(outputs)
            dominant_blocks.append(dominant)
        merged = {
            name: np.concatenate([chunk[name] for chunk in output_blocks])
            for name in self._rule_base.output_variables
        }
        return BatchInference(outputs=merged, dominant_indices=np.concatenate(dominant_blocks))
