"""Compiled Mamdani inference: the rule base precompiled into numpy tensors.

:class:`MamdaniEngine` walks the rule base with a per-rule Python loop on
every ``infer`` — an interpreted evaluation that dominates the runtime of the
FACS simulations (two controllers, ~70 rules, one inference per admission
decision).  :class:`CompiledMamdaniEngine` performs the same computation with
a handful of vectorized operations by lowering the rule base at construction
time into

* an *antecedent index matrix* ``A`` of shape ``(n_rules, max_props)`` whose
  entries point into a flat vector of fuzzified membership degrees (rules
  with fewer propositions are padded with a slot pinned to ``1.0``, the
  identity of every t-norm), and
* one *consequent surface tensor* ``C`` of shape ``(n_entries, resolution)``
  per output variable, stacking the pre-sampled consequent term surfaces in
  rule order.

One inference is then: fill the degree vector (scalar fast paths for the
triangular/trapezoidal shapes the paper uses), gather ``A`` and fold the
t-norm across its columns to get all firing strengths at once, clip/scale the
fired rows of ``C`` and reduce them with the s-norm, and defuzzify.

The compiled engine is an exact drop-in: for the paper's minimum/maximum
operators the results are bit-for-bit identical to the reference engine, and
for every other registered operator family they agree to ~1 ulp (the only
difference is floating-point reassociation).  This is locked down by the
equivalence tests in ``tests/fuzzy/test_compiled_engine.py``.

Only rule bases whose rules are pure conjunctions of unhedged propositions
can be compiled (FRB1 and FRB2 both are); anything else raises
:class:`RuleCompilationError` so callers can fall back to the reference
engine.

An optional LRU cache memoises crisp inferences, keyed on the (optionally
quantized) input tuple.  With ``cache_quantization=None`` the keys are exact
and cached results are indistinguishable from recomputation; with a
quantization step the cache trades exactness for hit rate.

The engine reuses an internal degree buffer across calls and is therefore
not thread-safe; use one engine per worker (processes each get their own).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

from .defuzzification import (
    DEFAULT_DEFUZZIFIER,
    Centroid,
    DefuzzificationError,
    Defuzzifier,
)
from .inference import ImplicationMethod, InferenceResult, MamdaniEngine, RuleActivation
from .membership import Trapezoidal, Triangular
from .operators import MAXIMUM, MINIMUM, SNorm, TNorm
from .rules import RuleBase, _is_pure_conjunction, _propositions
from .variables import LinguisticVariable, Term

__all__ = [
    "CompiledMamdaniEngine",
    "CrispInference",
    "RuleCompilationError",
    "CacheInfo",
]

_EPS = 1e-12
# np.isclose defaults, replicated so the scalar fast paths match the array
# evaluation of Triangular bitwise.
_ISCLOSE_RTOL = 1e-5
_ISCLOSE_ATOL = 1e-8


class RuleCompilationError(ValueError):
    """Raised when a rule base cannot be lowered to the compiled form."""


@dataclass(frozen=True)
class CrispInference:
    """Lightweight inference outcome: crisp outputs plus the dominant rule.

    The fast-path counterpart of :class:`InferenceResult` — no per-rule
    activation records and no aggregated surfaces, so admission decisions in
    the simulator hot loop do not pay for diagnostics they never read.
    """

    outputs: Mapping[str, float]
    dominant_index: int
    dominant_label: str

    def __getitem__(self, variable: str) -> float:
        return self.outputs[variable]


@dataclass(frozen=True)
class CacheInfo:
    """Hit/miss statistics of the engine's crisp-inference LRU cache."""

    hits: int
    misses: int
    size: int
    max_size: int


def _isclose_scalar(x: float, target: float) -> bool:
    return abs(x - target) <= _ISCLOSE_ATOL + _ISCLOSE_RTOL * abs(target)


def _triangular_degree(x: float, a: float, b: float, c: float) -> float:
    """Scalar replica of ``Triangular.evaluate`` followed by the [0, 1] clip.

    Mirrors the array implementation branch for branch (including the
    ``np.isclose`` peak snapping) so the result is bit-identical to
    ``term.degree(x)``.
    """
    mu = 0.0
    left_width = b - a
    right_width = c - b
    if left_width > _EPS:
        if a < x < b:
            mu = (x - a) / left_width
    elif _isclose_scalar(x, b):
        mu = 1.0
    if right_width > _EPS and b <= x < c:
        mu = (c - x) / right_width
    if _isclose_scalar(x, b):
        mu = 1.0
    if left_width <= _EPS and x == b:
        mu = 1.0
    return min(max(mu, 0.0), 1.0)


def _trapezoidal_degree(x: float, a: float, b: float, c: float, d: float) -> float:
    """Scalar replica of ``Trapezoidal.evaluate`` followed by the [0, 1] clip."""
    mu = 0.0
    left_width = b - a
    right_width = d - c
    if left_width > _EPS and a < x < b:
        mu = (x - a) / left_width
    if right_width > _EPS and c < x < d:
        mu = (d - x) / right_width
    if b <= x <= c:
        mu = 1.0
    return min(max(mu, 0.0), 1.0)


def _term_evaluator(term: Term) -> Callable[[float], float]:
    """Return the fastest exact scalar evaluator for a term's membership."""
    mf = term.membership
    if type(mf) is Triangular:
        a, b, c = mf.a, mf.b, mf.c
        return lambda x: _triangular_degree(x, a, b, c)
    if type(mf) is Trapezoidal:
        a, b, c, d = mf.a, mf.b, mf.c, mf.d
        return lambda x: _trapezoidal_degree(x, a, b, c, d)
    return term.degree


class CompiledMamdaniEngine(MamdaniEngine):
    """Vectorized Mamdani engine, equivalent to :class:`MamdaniEngine`.

    Parameters
    ----------
    rule_base, tnorm, snorm, implication, defuzzifier:
        As for :class:`MamdaniEngine`.
    cache_size:
        Maximum number of crisp inferences memoised by the LRU cache;
        ``0`` (the default) disables caching.
    cache_quantization:
        Optional quantization step applied to the cache key.  ``None`` keys
        the cache on the exact input floats (cached results are then
        identical to recomputation); a positive step buckets nearby inputs
        together, trading exactness for hit rate.

    Raises
    ------
    RuleCompilationError
        When a rule uses OR/NOT connectives or hedges and therefore cannot
        be lowered to the index-matrix form.
    """

    def __init__(
        self,
        rule_base: RuleBase,
        tnorm: TNorm = MINIMUM,
        snorm: SNorm = MAXIMUM,
        implication: str = ImplicationMethod.CLIP,
        defuzzifier: Defuzzifier = DEFAULT_DEFUZZIFIER,
        cache_size: int = 0,
        cache_quantization: float | None = None,
    ):
        super().__init__(
            rule_base,
            tnorm=tnorm,
            snorm=snorm,
            implication=implication,
            defuzzifier=defuzzifier,
        )
        if cache_size < 0:
            raise ValueError(f"cache_size must be non-negative, got {cache_size}")
        if cache_quantization is not None and cache_quantization <= 0.0:
            raise ValueError(
                f"cache_quantization must be positive, got {cache_quantization}"
            )
        self._cache_size = cache_size
        self._cache_quantization = cache_quantization
        self._cache: OrderedDict[tuple, CrispInference] | None = (
            OrderedDict() if cache_size > 0 else None
        )
        self._cache_hits = 0
        self._cache_misses = 0
        self._compile()

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def _compile(self) -> None:
        rule_base = self._rule_base
        self._input_order: list[str] = list(rule_base.input_variables)

        # Flat degree vector layout: one slot per (variable, term) in
        # variable order, plus a trailing slot pinned to 1.0 — the identity
        # of every t-norm — used to pad rules with fewer propositions.
        slot_of: dict[tuple[str, str], int] = {}
        fuzzify_plan: list[
            tuple[str, float, float, int, list[Callable[[float], float]]]
        ] = []
        n_slots = 0
        for name in self._input_order:
            variable = rule_base.input_variables[name]
            offset = n_slots
            evaluators: list[Callable[[float], float]] = []
            for term in variable:
                slot_of[(name, term.name)] = n_slots
                evaluators.append(_term_evaluator(term))
                n_slots += 1
            low, high = variable.universe
            fuzzify_plan.append((name, low, high, offset, evaluators))
        self._fuzzify_plan = fuzzify_plan
        self._identity_slot = n_slots
        self._degree_buffer = np.empty(n_slots + 1, dtype=float)
        self._degree_buffer[self._identity_slot] = 1.0

        rows: list[list[int]] = []
        for rule in rule_base:
            if not _is_pure_conjunction(rule.antecedent):
                raise RuleCompilationError(
                    f"rule {rule.label or rule} uses OR/NOT connectives; only pure "
                    f"conjunctions can be compiled — use MamdaniEngine instead"
                )
            props = _propositions(rule.antecedent)
            if any(prop.hedge is not None for prop in props):
                raise RuleCompilationError(
                    f"rule {rule.label or rule} uses hedges, which the compiled "
                    f"engine does not support — use MamdaniEngine instead"
                )
            rows.append([slot_of[(prop.variable, prop.term)] for prop in props])

        width = max(len(row) for row in rows)
        index = np.full((len(rows), width), self._identity_slot, dtype=np.intp)
        for i, row in enumerate(rows):
            index[i, : len(row)] = row
        self._antecedent_index = index
        self._antecedent_width = width

        weights = np.array([rule.weight for rule in rule_base], dtype=float)
        self._weights = weights
        self._trivial_weights = bool(np.all(weights == 1.0))

        # The centroid defuzzifier reduces to two trapezoid integrals over
        # the fixed output grid; precomputing the grid spacing and replaying
        # np.trapezoid's formula saves two np.diff calls per inference while
        # remaining bit-identical.  Only the exact Centroid type qualifies —
        # subclasses may override behaviour.
        self._fast_centroid = type(self._defuzzifier) is Centroid

        # Per output variable: (entry -> rule index, stacked surfaces, variable).
        plans: dict[str, tuple[np.ndarray, np.ndarray, LinguisticVariable]] = {}
        self._grid_diffs: dict[str, np.ndarray] = {}
        for var_name, variable in rule_base.output_variables.items():
            self._grid_diffs[var_name] = np.diff(variable.grid)
            surfaces: list[np.ndarray] = []
            entry_rules: list[int] = []
            for rule_index, rule in enumerate(rule_base):
                for consequent in rule.consequents:
                    if consequent.variable == var_name:
                        surfaces.append(
                            self._output_term_surfaces[var_name][consequent.term]
                        )
                        entry_rules.append(rule_index)
            tensor = (
                np.ascontiguousarray(np.stack(surfaces))
                if surfaces
                else np.zeros((0, variable.resolution))
            )
            plans[var_name] = (np.asarray(entry_rules, dtype=np.intp), tensor, variable)
        self._consequent_plans = plans

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def cache_info(self) -> CacheInfo:
        """Current statistics of the crisp-inference LRU cache."""
        return CacheInfo(
            hits=self._cache_hits,
            misses=self._cache_misses,
            size=len(self._cache) if self._cache is not None else 0,
            max_size=self._cache_size,
        )

    def clear_cache(self) -> None:
        """Drop every memoised inference and reset the hit/miss counters."""
        if self._cache is not None:
            self._cache.clear()
        self._cache_hits = 0
        self._cache_misses = 0

    # ------------------------------------------------------------------
    # Hot path
    # ------------------------------------------------------------------
    def _fill_degrees(self, inputs: Mapping[str, float]) -> np.ndarray:
        buffer = self._degree_buffer
        try:
            for name, low, high, offset, evaluators in self._fuzzify_plan:
                value = float(inputs[name])
                if value < low:
                    value = low
                elif value > high:
                    value = high
                for k, evaluator in enumerate(evaluators):
                    buffer[offset + k] = evaluator(value)
        except KeyError:
            missing = set(self._rule_base.input_variables) - set(inputs)
            raise ValueError(
                f"missing crisp inputs for variables: {sorted(missing)}"
            ) from None
        return buffer

    def _firing_strengths(self, buffer: np.ndarray) -> np.ndarray:
        picked = buffer[self._antecedent_index]
        strengths = picked[:, 0]
        tnorm = self._tnorm
        for column in range(1, self._antecedent_width):
            strengths = np.asarray(tnorm(strengths, picked[:, column]))
        if not self._trivial_weights:
            strengths = self._weights * strengths
        return strengths

    def _aggregate_output(
        self,
        strengths: np.ndarray,
        entry_rules: np.ndarray,
        tensor: np.ndarray,
        var_name: str,
        inputs: Mapping[str, float],
    ) -> np.ndarray:
        entry_strengths = strengths[entry_rules]
        fired = entry_strengths > 0.0
        if not fired.any():
            raise DefuzzificationError(
                f"no rule fired for output variable {var_name!r} with inputs "
                f"{dict(inputs)!r}; the rule base does not cover this input region"
            )
        if fired.all():
            surfaces, fired_strengths = tensor, entry_strengths
        else:
            surfaces, fired_strengths = tensor[fired], entry_strengths[fired]
        if self._implication == ImplicationMethod.CLIP:
            clipped = np.minimum(surfaces, fired_strengths[:, None])
        else:
            clipped = surfaces * fired_strengths[:, None]
        if self._snorm is MAXIMUM:
            # Clipped surfaces are non-negative, so the axis reduction equals
            # the reference engine's fold from a zero surface bit-for-bit.
            return clipped.max(axis=0)
        aggregated = np.zeros(tensor.shape[1])
        snorm = self._snorm
        for row in clipped:
            aggregated = np.asarray(snorm(aggregated, row))
        return aggregated

    def _defuzzify_fast(
        self, var_name: str, variable: LinguisticVariable, surface: np.ndarray
    ) -> float:
        """Defuzzify an internally aggregated (hence valid) surface.

        The validating ``__call__`` wrapper is skipped — at least one rule
        fired, so the surface is in-range and non-zero.  For the exact
        :class:`Centroid` defuzzifier the two ``np.trapezoid`` integrals are
        replayed against the precomputed grid spacing, producing the same
        value bit-for-bit with fewer array passes.
        """
        if self._fast_centroid:
            grid = variable.grid
            spacing = self._grid_diffs[var_name]
            area = float((spacing * (surface[1:] + surface[:-1]) / 2.0).sum())
            if area <= _EPS:  # pragma: no cover - unreachable after aggregation
                raise DefuzzificationError("zero area under membership surface")
            moment = surface * grid
            return float((spacing * (moment[1:] + moment[:-1]) / 2.0).sum() / area)
        return float(self._defuzzifier.defuzzify(variable.grid, surface))

    def _cache_key(self, inputs: Mapping[str, float]) -> tuple:
        try:
            values = tuple(float(inputs[name]) for name in self._input_order)
        except KeyError:
            missing = set(self._rule_base.input_variables) - set(inputs)
            raise ValueError(
                f"missing crisp inputs for variables: {sorted(missing)}"
            ) from None
        quantization = self._cache_quantization
        if quantization is not None:
            return tuple(round(value / quantization) for value in values)
        return values

    def infer_crisp(self, inputs: Mapping[str, float]) -> CrispInference:
        """Crisp outputs plus dominant rule, skipping all diagnostics.

        This is the engine's hot path: identical numbers to :meth:`infer`
        without materialising per-rule activation records or surface dicts.
        """
        cache = self._cache
        if cache is not None:
            key = self._cache_key(inputs)
            hit = cache.get(key)
            if hit is not None:
                cache.move_to_end(key)
                self._cache_hits += 1
                return hit
        buffer = self._fill_degrees(inputs)
        strengths = self._firing_strengths(buffer)
        outputs: dict[str, float] = {}
        for var_name, (entry_rules, tensor, variable) in self._consequent_plans.items():
            aggregated = self._aggregate_output(
                strengths, entry_rules, tensor, var_name, inputs
            )
            outputs[var_name] = self._defuzzify_fast(var_name, variable, aggregated)
        dominant = int(np.argmax(strengths))
        result = CrispInference(
            outputs=outputs,
            dominant_index=dominant,
            dominant_label=self._rule_base[dominant].label,
        )
        if cache is not None:
            self._cache_misses += 1
            cache[key] = result
            if len(cache) > self._cache_size:
                cache.popitem(last=False)
        return result

    def infer(self, inputs: Mapping[str, float]) -> InferenceResult:
        """Full inference with the same diagnostics as the reference engine."""
        buffer = self._fill_degrees(inputs)
        degrees = {
            name: {
                term.name: float(buffer[offset + k])
                for k, term in enumerate(self._rule_base.input_variables[name])
            }
            for name, _, _, offset, _ in self._fuzzify_plan
        }
        strengths = self._firing_strengths(buffer)
        activations = tuple(
            RuleActivation(rule, float(strength))
            for rule, strength in zip(self._rule_base, strengths)
        )
        outputs: dict[str, float] = {}
        aggregated: dict[str, np.ndarray] = {}
        for var_name, (entry_rules, tensor, variable) in self._consequent_plans.items():
            surface = self._aggregate_output(
                strengths, entry_rules, tensor, var_name, inputs
            )
            aggregated[var_name] = surface
            outputs[var_name] = self._defuzzifier(variable.grid, surface)
        return InferenceResult(
            outputs=outputs,
            fuzzified_inputs=degrees,
            activations=activations,
            aggregated=aggregated,
        )
