"""A self-contained fuzzy-logic toolkit (replacement for scikit-fuzzy).

Provides membership functions, linguistic variables, a rule DSL, Mamdani /
Sugeno inference and defuzzification — everything FLC1 and FLC2 of the
paper's FACS system need, built from scratch.
"""

from .membership import (
    ConstantMF,
    Gaussian,
    GeneralizedBell,
    MembershipFunction,
    PiShape,
    PiecewiseLinear,
    Sigmoid,
    Singleton,
    SShape,
    Trapezoidal,
    Triangular,
    ZShape,
    paper_trapezoidal,
    paper_triangular,
)
from .operators import (
    BOUNDED_SUM,
    LUKASIEWICZ_AND,
    MAXIMUM,
    MINIMUM,
    PROBABILISTIC_SUM,
    PRODUCT,
    SNorm,
    TNorm,
    snorm_by_name,
    tnorm_by_name,
)
from .hedges import Hedge, hedge_by_name
from .variables import FuzzificationResult, LinguisticVariable, Term
from .rules import And, Antecedent, Consequent, FuzzyRule, Not, Or, Proposition, RuleBase
from .parser import RuleSyntaxError, parse_rule, parse_rules
from .defuzzification import (
    Bisector,
    Centroid,
    DefuzzificationError,
    Defuzzifier,
    LargestOfMaximum,
    MeanOfMaximum,
    SmallestOfMaximum,
    WeightedAverage,
    defuzzifier_by_name,
)
from .inference import (
    ImplicationMethod,
    InferenceResult,
    MamdaniEngine,
    RuleActivation,
    SugenoEngine,
)
from .compiled import (
    CacheInfo,
    CompiledMamdaniEngine,
    CrispInference,
    RuleCompilationError,
)
from .controller import (
    ENGINE_CHOICES,
    ENGINES,
    ControllerSpec,
    EngineSpec,
    FuzzyController,
)

__all__ = [
    # membership
    "MembershipFunction",
    "Triangular",
    "Trapezoidal",
    "Gaussian",
    "GeneralizedBell",
    "Sigmoid",
    "ZShape",
    "SShape",
    "PiShape",
    "Singleton",
    "PiecewiseLinear",
    "ConstantMF",
    "paper_triangular",
    "paper_trapezoidal",
    # operators
    "TNorm",
    "SNorm",
    "MINIMUM",
    "PRODUCT",
    "LUKASIEWICZ_AND",
    "MAXIMUM",
    "PROBABILISTIC_SUM",
    "BOUNDED_SUM",
    "tnorm_by_name",
    "snorm_by_name",
    # hedges
    "Hedge",
    "hedge_by_name",
    # variables
    "Term",
    "LinguisticVariable",
    "FuzzificationResult",
    # rules
    "Antecedent",
    "Proposition",
    "And",
    "Or",
    "Not",
    "Consequent",
    "FuzzyRule",
    "RuleBase",
    "parse_rule",
    "parse_rules",
    "RuleSyntaxError",
    # defuzzification
    "Defuzzifier",
    "Centroid",
    "Bisector",
    "MeanOfMaximum",
    "SmallestOfMaximum",
    "LargestOfMaximum",
    "WeightedAverage",
    "defuzzifier_by_name",
    "DefuzzificationError",
    # inference
    "MamdaniEngine",
    "SugenoEngine",
    "InferenceResult",
    "RuleActivation",
    "ImplicationMethod",
    # compiled fast path
    "CompiledMamdaniEngine",
    "CrispInference",
    "RuleCompilationError",
    "CacheInfo",
    # controller
    "FuzzyController",
    "ControllerSpec",
    "ENGINE_CHOICES",
    "ENGINES",
    "EngineSpec",
]
