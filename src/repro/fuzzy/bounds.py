"""Certified interval bounds on compiled-engine centroid outputs.

The batched Mamdani hot path spends nearly all of its time materialising
``(rows, grid)`` aggregated surfaces and integrating them — work whose
*crisp result* is usually needed only coarsely (e.g. "is the defuzzified
score above the admission threshold?").  This module trades that dense
per-row integration for table lookups that bound the exact result from
both sides, so callers can act on every row whose answer the bounds
already decide and fall back to the exact engine for the rest.

The bounds are *certified*: they hold for the bit-exact value the engine's
batch path produces, not merely for the underlying real number.  Three
facts make that possible:

1. **Exact decomposition.**  With the MAXIMUM s-norm the aggregated
   surface is ``max_t f(T_t, s_t)`` over the distinct consequent terms
   (``f`` = min for CLIP, product for SCALE implication; ``s_t`` = the
   term's maximal firing strength).  When no grid point is covered by
   three or more term supports — true for every standard fuzzy partition,
   and verified at build time — the pointwise identity
   ``max(f_1, …, f_k) = Σ f_t − Σ min(f_t, f_u)`` over support-adjacent
   pairs ``(t, u)`` holds exactly, so areas and moments split into
   per-term curves and adjacent-pair overlap corrections.
2. **Monotonicity.**  Every curve is monotone in its strength argument,
   and IEEE-754 rounding is monotone, so evaluating a curve at tabulated
   strength knots bracketing ``s_t`` brackets its value — in float, not
   just in theory.  Likewise the final ``moment / area`` division is
   monotone in both operands, so evaluating it at interval corners
   brackets the exact quotient.
3. **Generous widening.**  Tables and sums are widened by ``1e-9``
   relative + ``1e-12`` absolute — about five orders of magnitude more
   than the worst-case accumulated rounding of the ~500-term trapezoid
   sums they stand in for — so *any* float summation order may be used to
   build them (the implementation uses BLAS dot products); differences
   between the table arithmetic and the engine's pinned summation trees
   are swallowed by the interval, never hidden by it.

The resulting intervals are loose by construction (knot quantisation plus
the widening), but a caller never has to trust them blindly: rows whose
interval straddles the caller's decision boundary are simply re-evaluated
exactly.
"""

from __future__ import annotations

import numpy as np

from .compiled import CompiledMamdaniEngine, ImplicationMethod
from .defuzzification import Centroid
from .operators import MAXIMUM, MINIMUM, PRODUCT

__all__ = ["CentroidBoundTables"]

#: Relative widening applied to every tabulated value and folded sum.
_REL = 1e-9
#: Absolute widening floor (guards values at or near zero).
_ABS = 1e-12


class CentroidBoundTables:
    """Lookup tables bounding one output variable's centroid, per row.

    Build via :meth:`for_engine`, which returns ``None`` when the engine or
    rule base falls outside the certified regime (non-compiled engine,
    non-MAXIMUM s-norm, non-centroid defuzzifier, rule weights, or a term
    geometry with triple overlaps).
    """

    def __init__(
        self,
        engine: CompiledMamdaniEngine,
        var_name: str,
        strength_cells: int = 1024,
        pair_cells: int = 128,
    ):
        grouped = engine._grouped_consequent_plans[var_name]
        term_surfaces, _term_columns, supports, grid_length = grouped
        variable = engine._consequent_plans[var_name][2]
        grid = variable.grid
        spacing = np.diff(grid)
        scale = self._implication_fn(engine)

        fulls = []
        for segment, (start, stop) in zip(term_surfaces, supports):
            full = np.zeros(grid_length)
            full[start:stop] = segment
            fulls.append(full)

        coverage = (np.stack(fulls) > 0.0).sum(axis=0)
        if coverage.size and int(coverage.max()) > 2:
            raise ValueError("term supports overlap more than pairwise")
        order = sorted(range(len(fulls)), key=lambda t: supports[t][0])
        pairs = []
        for i, t in enumerate(order):
            for u in order[i + 1 :]:
                if np.any((fulls[t] > 0.0) & (fulls[u] > 0.0)):
                    pairs.append((t, u))

        # Trapezoid integration as a dot product: the per-point quadrature
        # weights, optionally premultiplied by the (sign-split) grid for the
        # moment integrals.
        quad = np.zeros(grid_length)
        quad[:-1] += spacing / 2.0
        quad[1:] += spacing / 2.0
        weight_sets = (quad, quad * np.maximum(grid, 0.0), quad * np.maximum(-grid, 0.0))

        # Kept for the direct (table-free) interval path.
        self._fulls = np.stack(fulls) if fulls else np.zeros((0, grid_length))
        self._pairs = pairs
        self._scale = scale
        self._weights_matrix = np.stack(weight_sets, axis=1)

        self._sigma = np.linspace(0.0, 1.0, strength_cells + 1)
        self._pair_sigma = np.linspace(0.0, 1.0, pair_cells + 1)
        self._pair_cells = pair_cells

        n_terms = len(fulls)
        knots = strength_cells + 1
        # Knot-major (knots, n_terms) layout so per-row lookups are a single
        # fancy-index gather per table.
        lo_tables = [np.empty((knots, n_terms)) for _ in range(3)]
        hi_tables = [np.empty((knots, n_terms)) for _ in range(3)]
        for t, full in enumerate(fulls):
            clipped = scale(full[None, :], self._sigma[:, None])
            for k, weights in enumerate(weight_sets):
                sums = clipped @ weights
                lo_tables[k][:, t] = sums * (1.0 - _REL) - _ABS
                hi_tables[k][:, t] = sums * (1.0 + _REL) + _ABS
        # Fused (knots, n_terms, 3) layout: one gather per endpoint serves
        # the area and both sign-split moment integrals at once.
        self._term_lo = np.stack(lo_tables, axis=2)
        self._term_hi = np.stack(hi_tables, axis=2)

        # Adjacent-pair overlap corrections, flattened over the 2-D
        # (σ_t, σ_u) knot grid: (pair knots squared, n_pairs) layout.
        n_pairs = len(pairs)
        square = self._pair_sigma.size ** 2
        pair_lo = [np.empty((square, n_pairs)) for _ in range(3)]
        pair_hi = [np.empty((square, n_pairs)) for _ in range(3)]
        for p, (t, u) in enumerate(pairs):
            left = scale(fulls[t][None, :], self._pair_sigma[:, None])
            right = scale(fulls[u][None, :], self._pair_sigma[:, None])
            overlap = np.minimum(left[:, None, :], right[None, :, :]).reshape(
                square, grid_length
            )
            for k, weights in enumerate(weight_sets):
                sums = overlap @ weights
                pair_lo[k][:, p] = sums * (1.0 - _REL) - _ABS
                pair_hi[k][:, p] = sums * (1.0 + _REL) + _ABS
        self._pair_lo = np.stack(pair_lo, axis=2)
        self._pair_hi = np.stack(pair_hi, axis=2)
        self._pair_t = np.array([t for t, _ in pairs], dtype=np.intp)
        self._pair_u = np.array([u for _, u in pairs], dtype=np.intp)
        self._term_cols = np.arange(n_terms)
        self._pair_cols = np.arange(n_pairs)
        # With power-of-two cell counts the knots are i / K with K a power of
        # two, so s * K is computed exactly (scaling by a power of two never
        # rounds) and floor/ceil give the certified bracketing indices with
        # plain arithmetic instead of a binary search.
        self._uniform = (strength_cells & (strength_cells - 1)) == 0 and (
            pair_cells & (pair_cells - 1)
        ) == 0
        self._strength_cells = strength_cells

    # ------------------------------------------------------------------
    @staticmethod
    def _implication_fn(engine: CompiledMamdaniEngine):
        if engine._implication == ImplicationMethod.CLIP:
            return np.minimum
        return np.multiply

    @classmethod
    def for_engine(
        cls,
        engine: object,
        var_name: str,
        strength_cells: int = 1024,
        pair_cells: int = 128,
    ) -> "CentroidBoundTables | None":
        """Build tables for ``engine``'s output ``var_name``, or ``None``.

        ``None`` (rather than an error) keeps callers' fast paths optional:
        anything outside the certified regime simply runs exact.
        """
        if not isinstance(engine, CompiledMamdaniEngine):
            return None
        if engine._snorm is not MAXIMUM:
            return None
        if engine._tnorm is not MINIMUM and engine._tnorm is not PRODUCT:
            return None
        if not engine._trivial_weights or not engine._fast_centroid:
            return None
        if type(engine._defuzzifier) is not Centroid:
            return None
        if var_name not in engine._grouped_consequent_plans:
            return None
        try:
            return cls(engine, var_name, strength_cells, pair_cells)
        except ValueError:
            return None

    # ------------------------------------------------------------------
    def score_interval(
        self, s_lo: np.ndarray, s_hi: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Bound the centroid for rows of term-strength intervals.

        ``s_lo``/``s_hi`` are ``(rows, n_terms)`` arrays with
        ``0 <= s_lo <= s_hi <= 1`` bounding each term's maximal firing
        strength.  Returns ``(lo, hi, valid)``; where ``valid`` is False the
        area's lower bound was not positive and the row must be evaluated
        exactly.
        """
        last = self._sigma.size - 1
        if self._uniform:
            cells = self._strength_cells
            ilo = np.clip(np.floor(s_lo * cells).astype(np.intp), 0, last)
            ihi = np.clip(np.ceil(s_hi * cells).astype(np.intp), 0, last)
            plo = np.clip(
                np.floor(s_lo * self._pair_cells).astype(np.intp), 0, self._pair_cells
            )
            phi = np.clip(
                np.ceil(s_hi * self._pair_cells).astype(np.intp), 0, self._pair_cells
            )
        else:
            ilo = np.clip(np.searchsorted(self._sigma, s_lo, side="right") - 1, 0, last)
            ihi = np.clip(np.searchsorted(self._sigma, s_hi, side="left"), 0, last)
            plo = np.clip(
                np.searchsorted(self._pair_sigma, s_lo, side="right") - 1,
                0,
                self._pair_cells,
            )
            phi = np.clip(
                np.searchsorted(self._pair_sigma, s_hi, side="left"),
                0,
                self._pair_cells,
            )

        cols = self._term_cols
        lo_sums = self._term_lo[ilo, cols].sum(axis=1)
        hi_sums = self._term_hi[ihi, cols].sum(axis=1)
        if self._pair_t.size:
            width = self._pair_cells + 1
            # Overlap corrections subtract, so the *upper* strength corner
            # tightens the lower bound and vice versa.
            upper = phi[:, self._pair_t] * width + phi[:, self._pair_u]
            lower = plo[:, self._pair_t] * width + plo[:, self._pair_u]
            pcols = self._pair_cols
            lo_sums -= self._pair_hi[upper, pcols].sum(axis=1)
            hi_sums -= self._pair_lo[lower, pcols].sum(axis=1)

        return self._finish(
            lo_sums[:, 0],
            hi_sums[:, 0],
            lo_sums[:, 1],
            hi_sums[:, 1],
            lo_sums[:, 2],
            hi_sums[:, 2],
        )

    def score_interval_direct(
        self, s_lo: np.ndarray, s_hi: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Like :meth:`score_interval`, but free of knot quantisation.

        Evaluates the per-term curves and pair overlaps at the exact
        strength endpoints instead of bracketing knots, so the interval
        width is driven by the strength interval itself plus the widening —
        no ``1/strength_cells`` resolution floor.  Costs a ``(rows, grid)``
        materialisation per term, so it suits one-time table construction
        (e.g. screen cell tables), not per-request screening.
        """
        rows = s_lo.shape[0]
        parts = [np.empty(rows) for _ in range(6)]
        chunk = 256
        for start in range(0, rows, chunk):
            stop = min(start + chunk, rows)
            self._direct_chunk(s_lo[start:stop], s_hi[start:stop], parts, start)
        return self._finish(*parts)

    def _direct_chunk(
        self,
        s_lo: np.ndarray,
        s_hi: np.ndarray,
        parts: list[np.ndarray],
        offset: int,
    ) -> None:
        rows = s_lo.shape[0]
        stop = offset + rows
        # Clipped/scaled curves per term at both endpoints, reused by the
        # pair overlaps below.
        clipped_lo = [
            self._scale(full[None, :], s_lo[:, t, None])
            for t, full in enumerate(self._fulls)
        ]
        clipped_hi = [
            self._scale(full[None, :], s_hi[:, t, None])
            for t, full in enumerate(self._fulls)
        ]
        lo_total = np.zeros((rows, 3))
        hi_total = np.zeros((rows, 3))
        weights = self._weights_matrix
        for t in range(len(self._fulls)):
            sums_lo = clipped_lo[t] @ weights
            sums_hi = clipped_hi[t] @ weights
            lo_total += sums_lo * (1.0 - _REL) - _ABS
            hi_total += sums_hi * (1.0 + _REL) + _ABS
        for t, u in self._pairs:
            # Overlap corrections subtract, so the *upper* strength corner
            # tightens the lower bound and vice versa.
            over_hi = np.minimum(clipped_hi[t], clipped_hi[u]) @ weights
            over_lo = np.minimum(clipped_lo[t], clipped_lo[u]) @ weights
            lo_total -= over_hi * (1.0 + _REL) + _ABS
            hi_total -= over_lo * (1.0 - _REL) - _ABS
        a_lo, a_hi, mp_lo, mp_hi, mn_lo, mn_hi = parts
        a_lo[offset:stop] = lo_total[:, 0]
        a_hi[offset:stop] = hi_total[:, 0]
        mp_lo[offset:stop] = lo_total[:, 1]
        mp_hi[offset:stop] = hi_total[:, 1]
        mn_lo[offset:stop] = lo_total[:, 2]
        mn_hi[offset:stop] = hi_total[:, 2]

    @staticmethod
    def _finish(
        a_lo: np.ndarray,
        a_hi: np.ndarray,
        mp_lo: np.ndarray,
        mp_hi: np.ndarray,
        mn_lo: np.ndarray,
        mn_hi: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        m_lo = mp_lo - mn_hi
        m_hi = mp_hi - mn_lo
        slack_m = _REL * (np.abs(mp_hi) + np.abs(mn_hi)) + _ABS
        slack_a = _REL * np.abs(a_hi) + _ABS
        m_lo -= slack_m
        m_hi += slack_m
        a_lo = a_lo - slack_a
        a_hi = a_hi + slack_a

        valid = a_lo > 0.0
        safe_lo = np.where(valid, a_lo, 1.0)
        safe_hi = np.where(valid, a_hi, 1.0)
        lo = np.minimum(m_lo / safe_lo, m_lo / safe_hi)
        hi = np.maximum(m_hi / safe_lo, m_hi / safe_hi)
        return lo, hi, valid
