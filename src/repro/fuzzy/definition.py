"""Declarative fuzzy-controller definitions.

A :class:`FLCDefinition` is a frozen, validated *data description* of a
complete Mamdani controller — linguistic variables with their membership
function parameter vectors, a weighted rule list and a defuzzifier choice.
It is built entirely from primitives and tuples, so definitions are
hashable (usable as ``lru_cache`` keys), picklable (shippable to worker
processes) and losslessly serializable to plain JSON dicts.

Two directions are supported:

``FLCDefinition.build_controller``
    compiles the definition into a live
    :class:`~repro.fuzzy.controller.FuzzyController` on the existing
    ``RuleBase``/``CompiledMamdaniEngine`` path.  A definition extracted
    from an in-code controller rebuilds a *bit-identical* control surface:
    the exact float break points, rule order, weights and resolution round
    trip untouched.

``definition_from_rule_base`` / ``definition_from_controller``
    extract a definition from an existing rule base or controller, the
    route used to export the paper's built-in FLC1/FLC2 as JSON files
    (``examples/controllers/``).

This module sits at the bottom of the dependency stack: it only imports
other ``repro.fuzzy`` modules.  The schema-versioned JSON codecs live in
:mod:`repro.analysis.io` (``flc_definition_to_dict`` and friends), which
is downstream of this module.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Iterable, Mapping

from .controller import FuzzyController
from .defuzzification import Defuzzifier, defuzzifier_by_name
from .membership import MembershipFunction, Trapezoidal, Triangular
from .rules import (
    And,
    Consequent,
    FuzzyRule,
    Proposition,
    RuleBase,
    _is_pure_conjunction,
    _propositions,
)
from .variables import LinguisticVariable, Term

__all__ = [
    "DefinitionError",
    "MembershipDef",
    "TermDef",
    "VariableDef",
    "RuleDef",
    "FLCDefinition",
    "definition_from_rule_base",
    "definition_from_controller",
]


class DefinitionError(ValueError):
    """A controller definition is malformed or internally inconsistent."""


#: Membership-function kinds a definition can carry, mapped to the number
#: of shape parameters each expects.  Only the shapes the paper's
#: controllers use are serializable; other MF classes raise loudly on
#: extraction instead of degrading silently.
MF_PARAM_COUNTS: Mapping[str, int] = {"triangular": 3, "trapezoidal": 4}


def _float_tuple(values: Iterable[Any], what: str) -> tuple[float, ...]:
    out = []
    for value in values:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise DefinitionError(f"{what} must be numbers, got {value!r}")
        out.append(float(value))
    return tuple(out)


@dataclass(frozen=True)
class MembershipDef:
    """Shape + parameter vector of one membership function."""

    kind: str
    params: tuple[float, ...]

    def __post_init__(self) -> None:
        if self.kind not in MF_PARAM_COUNTS:
            raise DefinitionError(
                f"unknown membership kind {self.kind!r}; "
                f"supported: {sorted(MF_PARAM_COUNTS)}"
            )
        object.__setattr__(
            self, "params", _float_tuple(self.params, f"{self.kind} parameters")
        )
        expected = MF_PARAM_COUNTS[self.kind]
        if len(self.params) != expected:
            raise DefinitionError(
                f"{self.kind} membership takes {expected} parameters, "
                f"got {len(self.params)}: {list(self.params)}"
            )

    def build(self, *, variable: str = "?", term: str = "?") -> MembershipFunction:
        """The live membership function, with contextual validation errors.

        A non-monotonic or out-of-range parameter vector reports *which*
        variable and term carries it plus the offending values, instead of
        the bare break-point message the shape classes raise on their own.
        """
        try:
            if self.kind == "triangular":
                return Triangular(*self.params)
            return Trapezoidal(*self.params)
        except ValueError as exc:
            raise DefinitionError(
                f"invalid {self.kind} membership for term {term!r} of "
                f"variable {variable!r}: params={list(self.params)}: {exc}"
            ) from exc

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "params": list(self.params)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "MembershipDef":
        _check_keys(payload, {"kind", "params"}, "membership")
        return cls(kind=payload.get("kind", ""), params=tuple(payload.get("params", ())))


@dataclass(frozen=True)
class TermDef:
    """A named linguistic term and its membership definition."""

    name: str
    membership: MembershipDef

    def __post_init__(self) -> None:
        _check_name(self.name, "term name")
        if isinstance(self.membership, Mapping):
            object.__setattr__(
                self, "membership", MembershipDef.from_dict(self.membership)
            )
        if not isinstance(self.membership, MembershipDef):
            raise DefinitionError(
                f"term {self.name!r} membership must be a MembershipDef, "
                f"got {type(self.membership).__name__}"
            )

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "membership": self.membership.to_dict()}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TermDef":
        _check_keys(payload, {"name", "membership"}, "term")
        return cls(name=payload.get("name", ""), membership=payload.get("membership", {}))


@dataclass(frozen=True)
class VariableDef:
    """A linguistic variable: universe, resolution and its term family."""

    name: str
    universe: tuple[float, float]
    terms: tuple[TermDef, ...]
    resolution: int = 501

    def __post_init__(self) -> None:
        _check_name(self.name, "variable name")
        universe = _float_tuple(self.universe, f"variable {self.name!r} universe")
        if len(universe) != 2 or not universe[0] < universe[1]:
            raise DefinitionError(
                f"variable {self.name!r} universe must be (low, high) with "
                f"low < high, got {list(universe)}"
            )
        object.__setattr__(self, "universe", universe)
        object.__setattr__(self, "terms", _coerce_tuple(self.terms, TermDef, "term"))
        if not self.terms:
            raise DefinitionError(f"variable {self.name!r} has no terms")
        seen: set[str] = set()
        for term in self.terms:
            if term.name in seen:
                raise DefinitionError(
                    f"variable {self.name!r} has duplicate term {term.name!r}"
                )
            seen.add(term.name)
        if not isinstance(self.resolution, int) or isinstance(self.resolution, bool):
            raise DefinitionError(
                f"variable {self.name!r} resolution must be an int, "
                f"got {self.resolution!r}"
            )
        # Build each membership function once now so a bad parameter vector
        # fails at definition time, naming the variable and term.
        for term in self.terms:
            term.membership.build(variable=self.name, term=term.name)

    def term_names(self) -> tuple[str, ...]:
        return tuple(term.name for term in self.terms)

    def build(self) -> LinguisticVariable:
        """The live :class:`LinguisticVariable` this definition describes."""
        terms = [
            Term(term.name, term.membership.build(variable=self.name, term=term.name))
            for term in self.terms
        ]
        try:
            return LinguisticVariable(
                self.name, self.universe, terms, resolution=self.resolution
            )
        except ValueError as exc:
            raise DefinitionError(f"variable {self.name!r}: {exc}") from exc

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "universe": list(self.universe),
            "resolution": self.resolution,
            "terms": [term.to_dict() for term in self.terms],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "VariableDef":
        _check_keys(payload, {"name", "universe", "resolution", "terms"}, "variable")
        return cls(
            name=payload.get("name", ""),
            universe=tuple(payload.get("universe", ())),
            terms=tuple(payload.get("terms", ())),
            resolution=payload.get("resolution", 501),
        )


@dataclass(frozen=True)
class RuleDef:
    """One conjunctive rule: (variable, term) pairs in, consequents out."""

    antecedent: tuple[tuple[str, str], ...]
    consequents: tuple[tuple[str, str], ...]
    weight: float = 1.0
    label: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "antecedent", _pair_tuple(self.antecedent, "antecedent")
        )
        object.__setattr__(
            self, "consequents", _pair_tuple(self.consequents, "consequent")
        )
        if not self.antecedent:
            raise DefinitionError(f"rule {self.label!r} has an empty antecedent")
        if not self.consequents:
            raise DefinitionError(f"rule {self.label!r} has no consequents")
        if isinstance(self.weight, bool) or not isinstance(self.weight, (int, float)):
            raise DefinitionError(
                f"rule {self.label!r} weight must be a number, got {self.weight!r}"
            )
        object.__setattr__(self, "weight", float(self.weight))
        if not 0.0 <= self.weight <= 1.0:
            raise DefinitionError(
                f"rule {self.label!r} weight must lie in [0, 1], got {self.weight}"
            )
        if not isinstance(self.label, str):
            raise DefinitionError(f"rule label must be a string, got {self.label!r}")

    def build(self) -> FuzzyRule:
        """The live :class:`FuzzyRule` (pure AND of the antecedent pairs)."""
        propositions = [Proposition(var, term) for var, term in self.antecedent]
        antecedent = (
            propositions[0] if len(propositions) == 1 else And(tuple(propositions))
        )
        consequents = tuple(Consequent(var, term) for var, term in self.consequents)
        return FuzzyRule(
            antecedent=antecedent,
            consequents=consequents,
            weight=self.weight,
            label=self.label,
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "if": [list(pair) for pair in self.antecedent],
            "then": [list(pair) for pair in self.consequents],
            "weight": self.weight,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RuleDef":
        _check_keys(payload, {"if", "then", "weight", "label"}, "rule")
        return cls(
            antecedent=tuple(tuple(pair) for pair in payload.get("if", ())),
            consequents=tuple(tuple(pair) for pair in payload.get("then", ())),
            weight=payload.get("weight", 1.0),
            label=payload.get("label", ""),
        )


@dataclass(frozen=True)
class FLCDefinition:
    """A complete, self-validating fuzzy logic controller description."""

    name: str
    inputs: tuple[VariableDef, ...]
    outputs: tuple[VariableDef, ...]
    rules: tuple[RuleDef, ...]
    defuzzifier: str = "centroid"

    def __post_init__(self) -> None:
        _check_name(self.name, "controller name")
        object.__setattr__(
            self, "inputs", _coerce_tuple(self.inputs, VariableDef, "input variable")
        )
        object.__setattr__(
            self, "outputs", _coerce_tuple(self.outputs, VariableDef, "output variable")
        )
        object.__setattr__(self, "rules", _coerce_tuple(self.rules, RuleDef, "rule"))
        if not self.inputs:
            raise DefinitionError(f"controller {self.name!r} has no input variables")
        if not self.outputs:
            raise DefinitionError(f"controller {self.name!r} has no output variables")
        if not self.rules:
            raise DefinitionError(f"controller {self.name!r} has no rules")
        names: set[str] = set()
        for variable in (*self.inputs, *self.outputs):
            if variable.name in names:
                raise DefinitionError(
                    f"controller {self.name!r} declares variable "
                    f"{variable.name!r} twice"
                )
            names.add(variable.name)
        if not isinstance(self.defuzzifier, str):
            raise DefinitionError(
                f"defuzzifier must be a name string, got {self.defuzzifier!r}"
            )
        try:
            defuzzifier_by_name(self.defuzzifier)
        except KeyError as exc:
            raise DefinitionError(str(exc)) from exc
        inputs = {v.name: set(v.term_names()) for v in self.inputs}
        outputs = {v.name: set(v.term_names()) for v in self.outputs}
        for rule in self.rules:
            for var, term in rule.antecedent:
                if var not in inputs:
                    raise DefinitionError(
                        f"rule {rule.label!r} refers to unknown input "
                        f"variable {var!r}"
                    )
                if term not in inputs[var]:
                    raise DefinitionError(
                        f"rule {rule.label!r} refers to unknown term {term!r} "
                        f"of input variable {var!r}"
                    )
            for var, term in rule.consequents:
                if var not in outputs:
                    raise DefinitionError(
                        f"rule {rule.label!r} refers to unknown output "
                        f"variable {var!r}"
                    )
                if term not in outputs[var]:
                    raise DefinitionError(
                        f"rule {rule.label!r} refers to unknown term {term!r} "
                        f"of output variable {var!r}"
                    )

    # -- structure views -------------------------------------------------

    def input_names(self) -> tuple[str, ...]:
        return tuple(variable.name for variable in self.inputs)

    def output_names(self) -> tuple[str, ...]:
        return tuple(variable.name for variable in self.outputs)

    def variable(self, name: str) -> VariableDef:
        for variable in (*self.inputs, *self.outputs):
            if variable.name == name:
                return variable
        raise DefinitionError(
            f"controller {self.name!r} has no variable {name!r}; "
            f"available: {sorted(self.input_names() + self.output_names())}"
        )

    def rule_by_label(self, label: str) -> RuleDef:
        for rule in self.rules:
            if rule.label == label:
                return rule
        raise DefinitionError(
            f"controller {self.name!r} has no rule labelled {label!r}"
        )

    def with_variable(self, variable: VariableDef) -> "FLCDefinition":
        """A copy with the same-named variable replaced."""
        found = False

        def swap(variables: tuple[VariableDef, ...]) -> tuple[VariableDef, ...]:
            nonlocal found
            out = []
            for existing in variables:
                if existing.name == variable.name:
                    found = True
                    out.append(variable)
                else:
                    out.append(existing)
            return tuple(out)

        updated = replace(
            self, inputs=swap(self.inputs), outputs=swap(self.outputs)
        )
        if not found:
            raise DefinitionError(
                f"controller {self.name!r} has no variable {variable.name!r}"
            )
        return updated

    def with_rule(self, rule: RuleDef) -> "FLCDefinition":
        """A copy with the same-labelled rule replaced."""
        self.rule_by_label(rule.label)
        return replace(
            self,
            rules=tuple(
                rule if existing.label == rule.label else existing
                for existing in self.rules
            ),
        )

    # -- compilation -----------------------------------------------------

    def build_controller(
        self, engine: str = "auto", defuzzifier: Defuzzifier | None = None
    ) -> FuzzyController:
        """Compile into a live :class:`FuzzyController`.

        ``defuzzifier`` overrides the definition's named choice (used by
        the ablation paths); by default the definition is authoritative.
        """
        return FuzzyController(
            name=self.name,
            inputs=[variable.build() for variable in self.inputs],
            outputs=[variable.build() for variable in self.outputs],
            rules=[rule.build() for rule in self.rules],
            defuzzifier=(
                defuzzifier_by_name(self.defuzzifier)
                if defuzzifier is None
                else defuzzifier
            ),
            engine=engine,
        )

    # -- codecs ----------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON dict (schema stamping lives in :mod:`repro.analysis.io`)."""
        return {
            "name": self.name,
            "defuzzifier": self.defuzzifier,
            "inputs": [variable.to_dict() for variable in self.inputs],
            "outputs": [variable.to_dict() for variable in self.outputs],
            "rules": [rule.to_dict() for rule in self.rules],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FLCDefinition":
        if not isinstance(payload, Mapping):
            raise DefinitionError(
                f"controller definition must be a mapping, got "
                f"{type(payload).__name__}"
            )
        _check_keys(
            payload,
            {"name", "defuzzifier", "inputs", "outputs", "rules"},
            "controller definition",
        )
        return cls(
            name=payload.get("name", ""),
            inputs=tuple(payload.get("inputs", ())),
            outputs=tuple(payload.get("outputs", ())),
            rules=tuple(payload.get("rules", ())),
            defuzzifier=payload.get("defuzzifier", "centroid"),
        )


# -- extraction ---------------------------------------------------------


def _membership_def(mf: MembershipFunction, variable: str, term: str) -> MembershipDef:
    if isinstance(mf, Triangular):
        return MembershipDef("triangular", (mf.a, mf.b, mf.c))
    if isinstance(mf, Trapezoidal):
        return MembershipDef("trapezoidal", (mf.a, mf.b, mf.c, mf.d))
    raise DefinitionError(
        f"term {term!r} of variable {variable!r} uses a "
        f"{type(mf).__name__} membership, which has no serializable "
        f"definition (supported: triangular, trapezoidal)"
    )


def _variable_def(variable: LinguisticVariable) -> VariableDef:
    return VariableDef(
        name=variable.name,
        universe=variable.universe,
        terms=tuple(
            TermDef(term.name, _membership_def(term.membership, variable.name, term.name))
            for term in variable
        ),
        resolution=variable.resolution,
    )


def _rule_def(rule: FuzzyRule) -> RuleDef:
    if not _is_pure_conjunction(rule.antecedent):
        raise DefinitionError(
            f"rule {rule.label!r} is not a pure conjunction; only AND-of-"
            f"propositions rules have a serializable definition"
        )
    pairs = []
    for proposition in _propositions(rule.antecedent):
        if proposition.hedge is not None:
            raise DefinitionError(
                f"rule {rule.label!r} uses a hedge on "
                f"{proposition.variable!r}; hedged rules have no "
                f"serializable definition"
            )
        pairs.append((proposition.variable, proposition.term))
    return RuleDef(
        antecedent=tuple(pairs),
        consequents=tuple((c.variable, c.term) for c in rule.consequents),
        weight=rule.weight,
        label=rule.label,
    )


def definition_from_rule_base(
    rule_base: RuleBase, name: str, defuzzifier: str = "centroid"
) -> FLCDefinition:
    """Extract a lossless definition from a live :class:`RuleBase`.

    Break points, universes, resolutions, rule order, weights and labels
    are copied exactly, so ``definition.build_controller()`` reproduces a
    bit-identical control surface.
    """
    return FLCDefinition(
        name=name,
        inputs=tuple(
            _variable_def(v) for v in rule_base.input_variables.values()
        ),
        outputs=tuple(
            _variable_def(v) for v in rule_base.output_variables.values()
        ),
        rules=tuple(_rule_def(rule) for rule in rule_base.rules),
        defuzzifier=defuzzifier,
    )


def definition_from_controller(
    controller: FuzzyController, defuzzifier: str = "centroid"
) -> FLCDefinition:
    """Extract a lossless definition from a live :class:`FuzzyController`."""
    return definition_from_rule_base(
        controller.rule_base, controller.name, defuzzifier=defuzzifier
    )


# -- helpers ------------------------------------------------------------


def _check_name(name: Any, what: str) -> None:
    if not isinstance(name, str) or not name:
        raise DefinitionError(f"{what} must be a non-empty string, got {name!r}")


def _pair_tuple(pairs: Any, what: str) -> tuple[tuple[str, str], ...]:
    out = []
    for pair in pairs:
        items = tuple(pair)
        if len(items) != 2 or not all(isinstance(p, str) and p for p in items):
            raise DefinitionError(
                f"each {what} entry must be a (variable, term) pair of "
                f"non-empty strings, got {pair!r}"
            )
        out.append(items)
    return tuple(out)


def _check_keys(payload: Mapping[str, Any], allowed: set[str], what: str) -> None:
    if not isinstance(payload, Mapping):
        raise DefinitionError(f"{what} must be a mapping, got {type(payload).__name__}")
    unknown = sorted(set(payload) - allowed)
    if unknown:
        raise DefinitionError(f"unknown {what} fields: {unknown}")


def _coerce_tuple(values: Any, cls: type, what: str) -> tuple:
    out = []
    for value in values:
        if isinstance(value, cls):
            out.append(value)
        elif isinstance(value, Mapping):
            out.append(cls.from_dict(value))
        else:
            raise DefinitionError(
                f"each {what} must be a {cls.__name__} or mapping, "
                f"got {type(value).__name__}"
            )
    return tuple(out)
