"""Linguistic hedges (modifiers) for fuzzy terms.

Hedges transform a membership degree (or an entire membership surface) to
express modified linguistic meaning, e.g. "very fast" or "somewhat near".
The paper's controllers do not use hedges, but the rule DSL
(:mod:`repro.fuzzy.parser`) accepts them, which makes the toolkit usable for
richer rule bases (and they are exercised in the test suite).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = [
    "Hedge",
    "VERY",
    "EXTREMELY",
    "SOMEWHAT",
    "SLIGHTLY",
    "INDEED",
    "NOT",
    "hedge_by_name",
    "register_hedge",
]

ArrayLike = float | np.ndarray


@dataclass(frozen=True)
class Hedge:
    """A named transformation on membership degrees."""

    name: str
    fn: Callable[[ArrayLike], ArrayLike]

    def __call__(self, mu: ArrayLike) -> ArrayLike:
        result = np.clip(self.fn(np.asarray(mu, dtype=float)), 0.0, 1.0)
        if np.isscalar(mu) or (isinstance(mu, np.ndarray) and mu.ndim == 0):
            return float(result)
        return result


def _intensify(mu: np.ndarray) -> np.ndarray:
    """Contrast intensification: push degrees towards 0 or 1."""
    return np.where(mu <= 0.5, 2.0 * mu**2, 1.0 - 2.0 * (1.0 - mu) ** 2)


VERY = Hedge("very", lambda mu: mu**2)
EXTREMELY = Hedge("extremely", lambda mu: mu**3)
SOMEWHAT = Hedge("somewhat", lambda mu: mu**0.5)
SLIGHTLY = Hedge("slightly", lambda mu: mu ** (1.0 / 3.0))
INDEED = Hedge("indeed", _intensify)
NOT = Hedge("not", lambda mu: 1.0 - mu)

_REGISTRY: dict[str, Hedge] = {
    hedge.name: hedge for hedge in (VERY, EXTREMELY, SOMEWHAT, SLIGHTLY, INDEED, NOT)
}


def hedge_by_name(name: str) -> Hedge:
    """Look up a hedge by name (case-insensitive)."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown hedge {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def register_hedge(hedge: Hedge) -> None:
    """Register a custom hedge so the rule parser can resolve it by name."""
    if hedge.name.lower() in _REGISTRY:
        raise ValueError(f"hedge {hedge.name!r} is already registered")
    _REGISTRY[hedge.name.lower()] = hedge
