"""Linguistic variables and terms.

A :class:`LinguisticVariable` couples a named crisp universe of discourse
(e.g. user speed in km/h over ``[0, 120]``) with a *term set* — named fuzzy
sets such as ``Slow``, ``Middle``, ``Fast`` — exactly as Section 3 of the
paper defines ``T(S)``, ``T(A)``, ``T(D)`` and so on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

import numpy as np

from .membership import MembershipFunction

__all__ = ["Term", "LinguisticVariable", "FuzzificationResult"]


@dataclass(frozen=True)
class Term:
    """A named fuzzy set belonging to a linguistic variable."""

    name: str
    membership: MembershipFunction

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("term name must be non-empty")

    def degree(self, value: float) -> float:
        """Membership degree of a crisp value in this term."""
        return float(self.membership(value))


@dataclass(frozen=True)
class FuzzificationResult:
    """Degrees of membership of a crisp value in every term of a variable."""

    variable: str
    value: float
    degrees: Mapping[str, float]

    def __getitem__(self, term: str) -> float:
        return self.degrees[term]

    def best_term(self) -> str:
        """Return the term with the highest membership degree."""
        return max(self.degrees, key=lambda name: self.degrees[name])

    def active_terms(self, threshold: float = 0.0) -> dict[str, float]:
        """Return terms whose membership degree strictly exceeds ``threshold``."""
        return {name: mu for name, mu in self.degrees.items() if mu > threshold}


class LinguisticVariable:
    """A named variable over a crisp universe with a set of linguistic terms.

    Parameters
    ----------
    name:
        Variable name as used in rules (``"S"``, ``"A"``, ``"Cv"``, ...).
    universe:
        ``(low, high)`` bounds of the crisp universe of discourse.
    terms:
        Iterable of :class:`Term`; at least one term is required.
    resolution:
        Number of sample points used when the variable is discretised for
        Mamdani aggregation/defuzzification.
    """

    def __init__(
        self,
        name: str,
        universe: tuple[float, float],
        terms: Iterable[Term],
        resolution: int = 501,
    ):
        if not name:
            raise ValueError("variable name must be non-empty")
        low, high = float(universe[0]), float(universe[1])
        if not low < high:
            raise ValueError(
                f"universe must satisfy low < high, got ({low}, {high}) for {name!r}"
            )
        if resolution < 3:
            raise ValueError(f"resolution must be at least 3, got {resolution}")
        term_list = list(terms)
        if not term_list:
            raise ValueError(f"variable {name!r} requires at least one term")
        names = [t.name for t in term_list]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate term names in variable {name!r}: {names}")

        self._name = name
        self._universe = (low, high)
        self._terms: dict[str, Term] = {t.name: t for t in term_list}
        self._resolution = resolution
        self._grid = np.linspace(low, high, resolution)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._name

    @property
    def universe(self) -> tuple[float, float]:
        return self._universe

    @property
    def resolution(self) -> int:
        return self._resolution

    @property
    def grid(self) -> np.ndarray:
        """Discretised universe used for aggregation and defuzzification."""
        return self._grid

    @property
    def term_names(self) -> list[str]:
        return list(self._terms)

    def __contains__(self, term_name: str) -> bool:
        return term_name in self._terms

    def __iter__(self) -> Iterator[Term]:
        return iter(self._terms.values())

    def __len__(self) -> int:
        return len(self._terms)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LinguisticVariable({self._name!r}, universe={self._universe}, "
            f"terms={self.term_names})"
        )

    def term(self, name: str) -> Term:
        """Return the term with the given name, raising ``KeyError`` otherwise."""
        try:
            return self._terms[name]
        except KeyError:
            raise KeyError(
                f"variable {self._name!r} has no term {name!r}; "
                f"available: {self.term_names}"
            ) from None

    # ------------------------------------------------------------------
    # Fuzzification
    # ------------------------------------------------------------------
    def clip(self, value: float) -> float:
        """Clamp a crisp value into the universe of discourse."""
        low, high = self._universe
        return float(min(max(value, low), high))

    def fuzzify(self, value: float, strict: bool = False) -> FuzzificationResult:
        """Compute the membership degree of ``value`` in every term.

        Values outside the universe are clamped to the nearest bound (the
        behaviour a real controller exhibits with out-of-range sensor
        readings) unless ``strict`` is true, in which case they raise
        ``ValueError``.
        """
        low, high = self._universe
        if strict and not (low <= value <= high):
            raise ValueError(
                f"value {value} outside universe [{low}, {high}] of variable {self._name!r}"
            )
        clipped = self.clip(value)
        degrees = {name: term.degree(clipped) for name, term in self._terms.items()}
        return FuzzificationResult(self._name, clipped, degrees)

    def sample_term(self, term_name: str) -> np.ndarray:
        """Sample a term's membership function over the variable grid."""
        return self.term(term_name).membership.sample(self._grid)

    def coverage(self) -> np.ndarray:
        """Element-wise maximum membership over all terms on the grid.

        A well-formed term set covers the universe (no "holes"), i.e. the
        coverage should be strictly positive everywhere.  The FACS membership
        configurations are tested against this property.
        """
        surfaces = [self.sample_term(name) for name in self._terms]
        return np.maximum.reduce(surfaces)

    def is_complete(self, tolerance: float = 1e-9) -> bool:
        """Return ``True`` when every universe point belongs to some term."""
        return bool(np.all(self.coverage() > tolerance))
