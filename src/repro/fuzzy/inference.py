"""Mamdani (and Larsen / Takagi–Sugeno zero-order) fuzzy inference engines.

The engine combines the four FLC blocks shown in Fig. 2 of the paper —
fuzzifier, inference engine, fuzzy rule base and defuzzifier — into a single
``infer`` call:

1. *Fuzzification*: crisp inputs are mapped to membership degrees of every
   input term.
2. *Rule evaluation*: each rule's antecedent is evaluated with the configured
   t-norm (default: minimum) and s-norm (default: maximum).
3. *Implication*: the rule's consequent set is clipped (Mamdani / minimum) or
   scaled (Larsen / product) by the firing strength.
4. *Aggregation*: all clipped consequent surfaces for an output variable are
   aggregated with the s-norm.
5. *Defuzzification*: the aggregated surface is reduced to a crisp output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from .defuzzification import DEFAULT_DEFUZZIFIER, DefuzzificationError, Defuzzifier
from .operators import MAXIMUM, MINIMUM, PRODUCT, SNorm, TNorm
from .rules import FuzzyRule, RuleBase

__all__ = [
    "ImplicationMethod",
    "RuleActivation",
    "InferenceResult",
    "BatchInference",
    "MamdaniEngine",
    "SugenoEngine",
]


class ImplicationMethod:
    """Implication operators supported by :class:`MamdaniEngine`."""

    CLIP = "clip"  # Mamdani: min(firing strength, mu)
    SCALE = "scale"  # Larsen: firing strength * mu

    ALL = (CLIP, SCALE)


@dataclass(frozen=True)
class RuleActivation:
    """Diagnostic record of one rule's contribution to an inference."""

    rule: FuzzyRule
    firing_strength: float

    def fired(self, threshold: float = 0.0) -> bool:
        return self.firing_strength > threshold


@dataclass(frozen=True)
class InferenceResult:
    """Outcome of a single inference: crisp outputs plus full diagnostics."""

    outputs: Mapping[str, float]
    fuzzified_inputs: Mapping[str, Mapping[str, float]]
    activations: tuple[RuleActivation, ...]
    aggregated: Mapping[str, np.ndarray]

    def __getitem__(self, variable: str) -> float:
        return self.outputs[variable]

    def fired_rules(self, threshold: float = 0.0) -> list[RuleActivation]:
        """Activations with firing strength above ``threshold``, strongest first."""
        fired = [a for a in self.activations if a.fired(threshold)]
        return sorted(fired, key=lambda a: a.firing_strength, reverse=True)

    def dominant_rule(self) -> RuleActivation:
        """The activation with the highest firing strength."""
        return max(self.activations, key=lambda a: a.firing_strength)


@dataclass(frozen=True)
class BatchInference:
    """Outcome of a batched inference over ``N`` crisp input rows.

    ``outputs`` maps every output variable to its ``(N,)`` vector of crisp
    values; ``dominant_indices`` holds the index of the strongest-firing rule
    per row.  Row ``i`` is exactly what ``infer`` would produce for the
    ``i``-th input row — the batch is a layout change, not an approximation.
    """

    outputs: Mapping[str, np.ndarray]
    dominant_indices: np.ndarray

    def __getitem__(self, variable: str) -> np.ndarray:
        return self.outputs[variable]

    def __len__(self) -> int:
        return int(self.dominant_indices.shape[0])


class MamdaniEngine:
    """Mamdani-type fuzzy inference over a :class:`RuleBase`.

    Parameters
    ----------
    rule_base:
        Validated rule base with its input and output variables.
    tnorm, snorm:
        Conjunction and disjunction/aggregation operators (paper default:
        minimum / maximum).
    implication:
        ``"clip"`` (Mamdani) or ``"scale"`` (Larsen).
    defuzzifier:
        Strategy reducing the aggregated output set to a crisp value
        (paper default: centroid).
    """

    def __init__(
        self,
        rule_base: RuleBase,
        tnorm: TNorm = MINIMUM,
        snorm: SNorm = MAXIMUM,
        implication: str = ImplicationMethod.CLIP,
        defuzzifier: Defuzzifier = DEFAULT_DEFUZZIFIER,
    ):
        if implication not in ImplicationMethod.ALL:
            raise ValueError(
                f"unknown implication method {implication!r}; "
                f"expected one of {ImplicationMethod.ALL}"
            )
        self._rule_base = rule_base
        self._tnorm = tnorm
        self._snorm = snorm
        self._implication = implication
        self._defuzzifier = defuzzifier
        # Pre-sample every output term on its variable grid once; inference
        # then only clips/aggregates arrays (hot path for the simulator).
        self._output_term_surfaces: dict[str, dict[str, np.ndarray]] = {
            var_name: {
                term.name: var.sample_term(term.name) for term in var
            }
            for var_name, var in rule_base.output_variables.items()
        }

    # ------------------------------------------------------------------
    @property
    def rule_base(self) -> RuleBase:
        return self._rule_base

    @property
    def input_order(self) -> list[str]:
        """Column order expected by :meth:`infer_batch` matrices.

        This is the rule base's declared input-variable order (not sorted),
        so matrices and scalar mappings address the same variables.
        """
        return list(self._rule_base.input_variables)

    @property
    def defuzzifier(self) -> Defuzzifier:
        return self._defuzzifier

    @property
    def tnorm(self) -> TNorm:
        return self._tnorm

    @property
    def snorm(self) -> SNorm:
        return self._snorm

    @property
    def implication(self) -> str:
        return self._implication

    # ------------------------------------------------------------------
    def fuzzify(self, inputs: Mapping[str, float]) -> dict[str, dict[str, float]]:
        """Fuzzify crisp inputs against every input variable's term set."""
        missing = set(self._rule_base.input_variables) - set(inputs)
        if missing:
            raise ValueError(f"missing crisp inputs for variables: {sorted(missing)}")
        degrees: dict[str, dict[str, float]] = {}
        for name, variable in self._rule_base.input_variables.items():
            degrees[name] = dict(variable.fuzzify(float(inputs[name])).degrees)
        return degrees

    def infer(self, inputs: Mapping[str, float]) -> InferenceResult:
        """Run the full fuzzify → infer → aggregate → defuzzify pipeline."""
        degrees = self.fuzzify(inputs)

        activations: list[RuleActivation] = []
        # output variable -> aggregated surface
        aggregated: dict[str, np.ndarray] = {
            name: np.zeros(var.resolution)
            for name, var in self._rule_base.output_variables.items()
        }
        any_fired: dict[str, bool] = {name: False for name in aggregated}

        for rule in self._rule_base:
            strength = rule.firing_strength(degrees, self._tnorm, self._snorm)
            activations.append(RuleActivation(rule, strength))
            if strength <= 0.0:
                continue
            for consequent in rule.consequents:
                term_surface = self._output_term_surfaces[consequent.variable][
                    consequent.term
                ]
                if self._implication == ImplicationMethod.CLIP:
                    clipped = np.minimum(term_surface, strength)
                else:
                    clipped = term_surface * strength
                current = aggregated[consequent.variable]
                aggregated[consequent.variable] = np.asarray(self._snorm(current, clipped))
                any_fired[consequent.variable] = True

        outputs: dict[str, float] = {}
        for name, variable in self._rule_base.output_variables.items():
            if not any_fired[name]:
                raise DefuzzificationError(
                    f"no rule fired for output variable {name!r} with inputs {dict(inputs)!r}; "
                    f"the rule base does not cover this input region"
                )
            outputs[name] = self._defuzzifier(variable.grid, aggregated[name])

        return InferenceResult(
            outputs=outputs,
            fuzzified_inputs=degrees,
            activations=tuple(activations),
            aggregated=aggregated,
        )

    def output_surface(
        self,
        output: str,
        inputs: Mapping[str, float],
    ) -> np.ndarray:
        """Return the aggregated fuzzy output surface for one inference."""
        result = self.infer(inputs)
        return np.asarray(result.aggregated[output])

    def _batch_matrix(
        self, inputs: np.ndarray | Mapping[str, np.ndarray]
    ) -> np.ndarray:
        """Coerce batch inputs to an ``(N, n_vars)`` float matrix.

        Accepts either a matrix whose columns follow :attr:`input_order` or a
        mapping of variable name to ``(N,)`` value vectors.
        """
        order = self.input_order
        if isinstance(inputs, Mapping):
            missing = set(order) - set(inputs)
            if missing:
                raise ValueError(
                    f"missing crisp inputs for variables: {sorted(missing)}"
                )
            columns = [np.asarray(inputs[name], dtype=float) for name in order]
            lengths = {column.shape for column in columns}
            if len(lengths) > 1 or any(column.ndim != 1 for column in columns):
                raise ValueError(
                    f"batch input vectors must be 1-D and equally sized, "
                    f"got shapes {[column.shape for column in columns]}"
                )
            return np.column_stack(columns)
        matrix = np.asarray(inputs, dtype=float)
        if matrix.ndim != 2 or matrix.shape[1] != len(order):
            raise ValueError(
                f"batch input matrix must have shape (N, {len(order)}) with "
                f"columns {order}, got {matrix.shape}"
            )
        return matrix

    def infer_batch(
        self, inputs: np.ndarray | Mapping[str, np.ndarray]
    ) -> BatchInference:
        """Infer crisp outputs for a whole batch of input rows.

        ``inputs`` is an ``(N, n_vars)`` matrix whose columns follow
        :attr:`input_order` (or a mapping of variable name to value vectors).
        The reference implementation simply loops :meth:`infer` per row;
        :class:`~repro.fuzzy.compiled.CompiledMamdaniEngine` overrides it
        with a tensorized evaluation that produces bit-identical numbers.
        """
        matrix = self._batch_matrix(inputs)
        order = self.input_order
        count = matrix.shape[0]
        outputs = {
            name: np.empty(count) for name in self._rule_base.output_variables
        }
        dominant = np.empty(count, dtype=np.intp)
        for i in range(count):
            row = {name: float(matrix[i, k]) for k, name in enumerate(order)}
            result = self.infer(row)
            for name in outputs:
                outputs[name][i] = result.outputs[name]
            activations = result.activations
            dominant[i] = max(
                range(len(activations)),
                key=lambda index: activations[index].firing_strength,
            )
        return BatchInference(outputs=outputs, dominant_indices=dominant)

    def control_surface(
        self,
        x_variable: str,
        y_variable: str,
        output: str,
        fixed: Mapping[str, float] | None = None,
        resolution: int = 25,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sweep two inputs and return ``(xs, ys, Z)`` of crisp outputs.

        Useful for visualising/regression-testing the FLC1 and FLC2 decision
        surfaces; all other input variables must be pinned via ``fixed``.
        The whole grid is evaluated through :meth:`infer_batch`, so the
        compiled engine computes it in a handful of tensor passes instead of
        ``resolution**2`` scalar inferences.
        """
        fixed = dict(fixed or {})
        input_vars = self._rule_base.input_variables
        for name in (x_variable, y_variable):
            if name not in input_vars:
                raise KeyError(f"unknown input variable {name!r}")
        remaining = set(input_vars) - {x_variable, y_variable} - set(fixed)
        if remaining:
            raise ValueError(
                f"fixed values required for input variables: {sorted(remaining)}"
            )
        xs = np.linspace(*input_vars[x_variable].universe, resolution)
        ys = np.linspace(*input_vars[y_variable].universe, resolution)
        # Row-major grid: x varies fastest, matching the historical
        # (for y: for x:) nesting point for point.
        columns = {
            x_variable: np.tile(xs, resolution),
            y_variable: np.repeat(ys, resolution),
        }
        matrix = np.empty((resolution * resolution, len(input_vars)))
        for k, name in enumerate(self.input_order):
            if name in columns:
                matrix[:, k] = columns[name]
            else:
                matrix[:, k] = float(fixed[name])
        batch = self.infer_batch(matrix)
        surface = batch.outputs[output].reshape(resolution, resolution)
        return xs, ys, surface


class SugenoEngine(MamdaniEngine):
    """Zero-order Takagi–Sugeno engine: consequents collapse to term centroids.

    Output is the firing-strength-weighted average of consequent term
    centroids.  Provided for the controller ablation; the paper's system is
    Mamdani.
    """

    def __init__(
        self,
        rule_base: RuleBase,
        tnorm: TNorm = PRODUCT,
        snorm: SNorm = MAXIMUM,
    ):
        super().__init__(rule_base, tnorm=tnorm, snorm=snorm)
        self._term_centroids: dict[str, dict[str, float]] = {
            var_name: {term.name: term.membership.centroid() for term in var}
            for var_name, var in rule_base.output_variables.items()
        }

    def infer(self, inputs: Mapping[str, float]) -> InferenceResult:
        degrees = self.fuzzify(inputs)
        activations: list[RuleActivation] = []
        numerator: dict[str, float] = {
            name: 0.0 for name in self._rule_base.output_variables
        }
        denominator: dict[str, float] = {
            name: 0.0 for name in self._rule_base.output_variables
        }
        for rule in self._rule_base:
            strength = rule.firing_strength(degrees, self._tnorm, self._snorm)
            activations.append(RuleActivation(rule, strength))
            if strength <= 0.0:
                continue
            for consequent in rule.consequents:
                centroid = self._term_centroids[consequent.variable][consequent.term]
                numerator[consequent.variable] += strength * centroid
                denominator[consequent.variable] += strength

        outputs: dict[str, float] = {}
        aggregated: dict[str, np.ndarray] = {}
        for name, variable in self._rule_base.output_variables.items():
            if denominator[name] <= 0.0:
                raise DefuzzificationError(
                    f"no rule fired for output variable {name!r} with inputs {dict(inputs)!r}"
                )
            outputs[name] = numerator[name] / denominator[name]
            aggregated[name] = np.zeros(variable.resolution)
        return InferenceResult(
            outputs=outputs,
            fuzzified_inputs=degrees,
            activations=tuple(activations),
            aggregated=aggregated,
        )
