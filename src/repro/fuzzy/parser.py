"""A small text DSL for fuzzy rules.

Grammar (case-insensitive keywords, whitespace-insensitive)::

    rule        := "IF" antecedent "THEN" consequents
    antecedent  := or_expr
    or_expr     := and_expr ("OR" and_expr)*
    and_expr    := unary_expr ("AND" unary_expr)*
    unary_expr  := "NOT" unary_expr | "(" or_expr ")" | proposition
    proposition := IDENT "IS" [hedge] IDENT
    consequents := consequent ("AND" consequent)*
    consequent  := IDENT "IS" IDENT

Example::

    IF S is Sl AND A is B1 AND D is N THEN Cv is Cv3

This is how the FRB1/FRB2 tables are materialised into
:class:`~repro.fuzzy.rules.FuzzyRule` objects, which keeps the rule tables in
the code byte-for-byte comparable with Tables 1 and 2 of the paper.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from .hedges import hedge_by_name
from .rules import And, Antecedent, Consequent, FuzzyRule, Not, Or, Proposition

__all__ = ["parse_rule", "parse_rules", "RuleSyntaxError"]

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<lparen>\()|(?P<rparen>\))|(?P<word>[A-Za-z_][A-Za-z0-9_/\-]*))"
)

_KEYWORDS = {"if", "then", "is", "and", "or", "not"}


class RuleSyntaxError(ValueError):
    """Raised when a rule string cannot be parsed."""


@dataclass(frozen=True)
class _Token:
    kind: str  # "word", "lparen", "rparen"
    text: str
    position: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise RuleSyntaxError(
                f"unexpected character {remainder[0]!r} at position {pos} in rule: {text!r}"
            )
        if match.lastgroup == "word":
            tokens.append(_Token("word", match.group("word"), match.start("word")))
        elif match.lastgroup == "lparen":
            tokens.append(_Token("lparen", "(", match.start()))
        elif match.lastgroup == "rparen":
            tokens.append(_Token("rparen", ")", match.start()))
        pos = match.end()
    return tokens


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    # -- token helpers -------------------------------------------------
    def _peek(self) -> _Token | None:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise RuleSyntaxError(f"unexpected end of rule: {self.text!r}")
        self.index += 1
        return token

    def _expect_keyword(self, keyword: str) -> None:
        token = self._next()
        if token.kind != "word" or token.text.lower() != keyword:
            raise RuleSyntaxError(
                f"expected {keyword.upper()!r} but found {token.text!r} "
                f"at position {token.position} in rule: {self.text!r}"
            )

    def _peek_keyword(self, keyword: str) -> bool:
        token = self._peek()
        return token is not None and token.kind == "word" and token.text.lower() == keyword

    # -- grammar -------------------------------------------------------
    def parse_rule(self, weight: float, label: str) -> FuzzyRule:
        self._expect_keyword("if")
        antecedent = self._parse_or()
        self._expect_keyword("then")
        consequents = self._parse_consequents()
        if self._peek() is not None:
            token = self._peek()
            raise RuleSyntaxError(
                f"unexpected trailing token {token.text!r} in rule: {self.text!r}"
            )
        return FuzzyRule(antecedent, tuple(consequents), weight=weight, label=label)

    def _parse_or(self) -> Antecedent:
        operands = [self._parse_and()]
        while self._peek_keyword("or"):
            self._next()
            operands.append(self._parse_and())
        if len(operands) == 1:
            return operands[0]
        return Or(tuple(operands))

    def _parse_and(self) -> Antecedent:
        operands = [self._parse_unary()]
        while self._peek_keyword("and"):
            self._next()
            operands.append(self._parse_unary())
        if len(operands) == 1:
            return operands[0]
        return And(tuple(operands))

    def _parse_unary(self) -> Antecedent:
        if self._peek_keyword("not"):
            self._next()
            return Not(self._parse_unary())
        token = self._peek()
        if token is not None and token.kind == "lparen":
            self._next()
            inner = self._parse_or()
            closing = self._next()
            if closing.kind != "rparen":
                raise RuleSyntaxError(
                    f"expected ')' but found {closing.text!r} in rule: {self.text!r}"
                )
            return inner
        return self._parse_proposition()

    def _parse_proposition(self) -> Proposition:
        variable = self._parse_identifier("variable name")
        self._expect_keyword("is")
        first = self._parse_identifier("term name")
        # Optional hedge: "S is very Fast" — 'very' resolves as a hedge and the
        # following word becomes the term.
        nxt = self._peek()
        if nxt is not None and nxt.kind == "word" and nxt.text.lower() not in _KEYWORDS:
            try:
                hedge = hedge_by_name(first)
            except KeyError:
                raise RuleSyntaxError(
                    f"unexpected token {nxt.text!r} after term {first!r} "
                    f"in rule: {self.text!r}"
                ) from None
            term = self._parse_identifier("term name")
            return Proposition(variable, term, hedge=hedge)
        return Proposition(variable, first)

    def _parse_consequents(self) -> list[Consequent]:
        consequents = [self._parse_consequent()]
        while self._peek_keyword("and"):
            self._next()
            consequents.append(self._parse_consequent())
        return consequents

    def _parse_consequent(self) -> Consequent:
        variable = self._parse_identifier("output variable name")
        self._expect_keyword("is")
        term = self._parse_identifier("output term name")
        return Consequent(variable, term)

    def _parse_identifier(self, what: str) -> str:
        token = self._next()
        if token.kind != "word" or token.text.lower() in _KEYWORDS:
            raise RuleSyntaxError(
                f"expected {what} but found {token.text!r} "
                f"at position {token.position} in rule: {self.text!r}"
            )
        return token.text


def parse_rule(text: str, weight: float = 1.0, label: str = "") -> FuzzyRule:
    """Parse a single ``IF ... THEN ...`` rule string into a :class:`FuzzyRule`."""
    stripped = text.strip()
    if not stripped:
        raise RuleSyntaxError("cannot parse an empty rule string")
    return _Parser(stripped).parse_rule(weight, label)


def parse_rules(lines: str | list[str]) -> list[FuzzyRule]:
    """Parse many rules from a multi-line string or list of strings.

    Blank lines and lines starting with ``#`` are ignored; rules are labelled
    with their ordinal position (``"0"``, ``"1"``, ...), matching the rule
    numbering of Tables 1 and 2.
    """
    if isinstance(lines, str):
        raw_lines = lines.splitlines()
    else:
        raw_lines = list(lines)
    rules: list[FuzzyRule] = []
    for raw in raw_lines:
        stripped = raw.strip()
        if not stripped or stripped.startswith("#"):
            continue
        rules.append(parse_rule(stripped, label=str(len(rules))))
    return rules
