"""High-level fuzzy logic controller (FLC) facade.

:class:`FuzzyController` packages the four blocks of Fig. 2 of the paper —
fuzzifier, inference engine, fuzzy rule base (FRB) and defuzzifier — behind a
single callable object with named inputs and a single (or multiple) crisp
outputs.  FLC1 and FLC2 of the FACS system are both instances of this class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from ..registry import Registry
from .compiled import CompiledMamdaniEngine, CrispInference, RuleCompilationError
from .defuzzification import DEFAULT_DEFUZZIFIER, Defuzzifier, defuzzifier_by_name
from .inference import ImplicationMethod, InferenceResult, MamdaniEngine
from .operators import MAXIMUM, MINIMUM, SNorm, TNorm, snorm_by_name, tnorm_by_name
from .parser import parse_rules
from .rules import FuzzyRule, RuleBase
from .variables import LinguisticVariable

__all__ = [
    "FuzzyController",
    "ControllerSpec",
    "EngineSpec",
    "ENGINES",
    "ENGINE_CHOICES",
]


@dataclass(frozen=True)
class EngineSpec:
    """One registered inference-engine mode.

    ``cli`` marks the modes exposed through the CLI's ``--engine`` flag
    (``"auto"`` is a library-only convenience: the CLI always makes the
    choice explicit so runs are self-describing).
    """

    name: str
    description: str
    cli: bool = True


#: Registry of inference-engine modes accepted by :class:`FuzzyController`
#: (and, transitively, by ``FACSConfig.engine`` and the CLI ``--engine``
#: flag) — the single source of truth for the engine *name set* used in
#: validation, CLI choices and error messages.  Unlike the controller and
#: executor registries this one is metadata-only: adding a mode also
#: requires a dispatch branch in ``FuzzyController.__init__``, which raises
#: on registered-but-undispatched names rather than guessing.
ENGINES: Registry[EngineSpec] = Registry("engine")

ENGINES.register(
    "compiled",
    EngineSpec(
        "compiled",
        "vectorized fast path lowered to numpy tensors; requires a "
        "compilable (pure-conjunction) rule base",
    ),
)
ENGINES.register(
    "reference",
    EngineSpec("reference", "interpreted per-rule Mamdani engine"),
)
ENGINES.register(
    "auto",
    EngineSpec(
        "auto",
        "compile when the rule base allows it, silently fall back otherwise",
        cli=False,
    ),
)

#: Engine names (backwards-compatible alias; prefer ``ENGINES.names()``).
#: Derived from the registry, sorted-stable for existing error messages.
ENGINE_CHOICES = tuple(sorted(ENGINES))


@dataclass(frozen=True)
class ControllerSpec:
    """Declarative description of a fuzzy controller.

    Keeps the configuration of FLC1/FLC2 (operators, implication,
    defuzzifier) serialisable and comparable in tests and ablations.
    """

    name: str
    tnorm: str = "minimum"
    snorm: str = "maximum"
    implication: str = ImplicationMethod.CLIP
    defuzzifier: str = "centroid"
    engine: str = "auto"

    def build(
        self,
        inputs: Sequence[LinguisticVariable],
        outputs: Sequence[LinguisticVariable],
        rules: Sequence[FuzzyRule] | str,
    ) -> "FuzzyController":
        """Materialise the spec into a runnable :class:`FuzzyController`."""
        return FuzzyController(
            name=self.name,
            inputs=inputs,
            outputs=outputs,
            rules=rules,
            tnorm=tnorm_by_name(self.tnorm),
            snorm=snorm_by_name(self.snorm),
            implication=self.implication,
            defuzzifier=defuzzifier_by_name(self.defuzzifier),
            engine=self.engine,
        )


class FuzzyController:
    """A complete Mamdani fuzzy logic controller.

    Parameters
    ----------
    name:
        Human-readable controller name (``"FLC1"``, ``"FLC2"``).
    inputs, outputs:
        Linguistic variables of the controller.
    rules:
        Either pre-built :class:`FuzzyRule` objects or a rule-DSL string /
        list of strings (see :mod:`repro.fuzzy.parser`).
    engine:
        ``"auto"`` (default) uses the vectorized
        :class:`~repro.fuzzy.compiled.CompiledMamdaniEngine` whenever the
        rule base is compilable and falls back to the interpreted
        :class:`MamdaniEngine` otherwise; ``"compiled"`` requires the fast
        path (raising :class:`RuleCompilationError` when impossible);
        ``"reference"`` always interprets.
    """

    def __init__(
        self,
        name: str,
        inputs: Sequence[LinguisticVariable],
        outputs: Sequence[LinguisticVariable],
        rules: Sequence[FuzzyRule] | Iterable[str] | str,
        tnorm: TNorm = MINIMUM,
        snorm: SNorm = MAXIMUM,
        implication: str = ImplicationMethod.CLIP,
        defuzzifier: Defuzzifier = DEFAULT_DEFUZZIFIER,
        engine: str = "auto",
    ):
        if isinstance(rules, str):
            rule_objs: Sequence[FuzzyRule] = parse_rules(rules)
        else:
            rules = list(rules)
            if rules and isinstance(rules[0], str):
                rule_objs = parse_rules([str(r) for r in rules])
            else:
                rule_objs = [r for r in rules if isinstance(r, FuzzyRule)]
                if len(rule_objs) != len(rules):
                    raise TypeError(
                        "rules must be FuzzyRule objects or rule strings, not a mix"
                    )
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of {tuple(sorted(ENGINES))}"
            )
        self._name = name
        self._rule_base = RuleBase(rule_objs, inputs, outputs, name=f"{name}-rules")
        engine_kwargs = dict(
            tnorm=tnorm,
            snorm=snorm,
            implication=implication,
            defuzzifier=defuzzifier,
        )
        if engine == "reference":
            self._engine: MamdaniEngine = MamdaniEngine(self._rule_base, **engine_kwargs)
        else:
            if engine != "auto" and engine != "compiled":  # pragma: no cover
                raise ValueError(
                    f"engine {engine!r} is registered but has no dispatch "
                    f"branch in FuzzyController"
                )
            try:
                self._engine = CompiledMamdaniEngine(self._rule_base, **engine_kwargs)
            except RuleCompilationError:
                if engine == "compiled":
                    raise
                self._engine = MamdaniEngine(self._rule_base, **engine_kwargs)

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._name

    @property
    def rule_base(self) -> RuleBase:
        return self._rule_base

    @property
    def engine(self) -> MamdaniEngine:
        return self._engine

    @property
    def engine_kind(self) -> str:
        """``"compiled"`` when the fast path is active, else ``"reference"``."""
        return (
            "compiled" if isinstance(self._engine, CompiledMamdaniEngine) else "reference"
        )

    @property
    def input_names(self) -> list[str]:
        return sorted(self._rule_base.input_variables)

    @property
    def output_names(self) -> list[str]:
        return sorted(self._rule_base.output_variables)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FuzzyController({self._name!r}, inputs={self.input_names}, "
            f"outputs={self.output_names}, rules={len(self._rule_base)})"
        )

    # ------------------------------------------------------------------
    def evaluate(self, **inputs: float) -> InferenceResult:
        """Run the controller and return the full :class:`InferenceResult`."""
        return self._engine.infer(inputs)

    def compute(self, **inputs: float) -> float:
        """Run the controller and return its single crisp output value.

        Raises ``ValueError`` when the controller has more than one output
        variable (use :meth:`evaluate` in that case).
        """
        outputs = self.output_names
        if len(outputs) != 1:
            raise ValueError(
                f"controller {self._name!r} has {len(outputs)} outputs; "
                "use evaluate() and index the result"
            )
        engine = self._engine
        if isinstance(engine, CompiledMamdaniEngine):
            return engine.infer_crisp(inputs)[outputs[0]]
        return engine.infer(inputs)[outputs[0]]

    def crisp_decision(self, **inputs: float) -> CrispInference:
        """Crisp outputs plus the dominant rule, via the fastest path.

        With a compiled engine this skips all per-rule diagnostics; with the
        reference engine the same record is distilled from a full
        :class:`InferenceResult`.  FLC1 and FLC2 use this in the simulator
        hot loop.
        """
        engine = self._engine
        if isinstance(engine, CompiledMamdaniEngine):
            return engine.infer_crisp(inputs)
        result = engine.infer(inputs)
        activations = result.activations
        dominant = max(range(len(activations)), key=lambda i: activations[i].firing_strength)
        return CrispInference(
            outputs=dict(result.outputs),
            dominant_index=dominant,
            dominant_label=activations[dominant].rule.label,
        )

    def compute_many(self, samples: Iterable[Mapping[str, float]]) -> list[float]:
        """Evaluate a batch of crisp input mappings (single-output controllers)."""
        return [self.compute(**dict(sample)) for sample in samples]

    def compute_batch(self, **inputs: np.ndarray) -> np.ndarray:
        """Crisp output vector for named ``(N,)`` input vectors.

        The batched counterpart of :meth:`compute`: with a compiled engine
        the whole batch flows through the tensorized
        :meth:`~repro.fuzzy.inference.MamdaniEngine.infer_batch` path and the
        returned values are bit-identical to calling :meth:`compute` per row.
        """
        outputs = self.output_names
        if len(outputs) != 1:
            raise ValueError(
                f"controller {self._name!r} has {len(outputs)} outputs; "
                "use engine.infer_batch() and index its outputs instead"
            )
        arrays = {name: np.asarray(values, dtype=float) for name, values in inputs.items()}
        return self._engine.infer_batch(arrays).outputs[outputs[0]]

    def rule_table(self) -> list[dict[str, str]]:
        """Render the rule base as a list of ``{column: value}`` rows.

        Only meaningful for grid rule bases made of pure conjunctions (as
        FRB1 and FRB2 are); each row contains one column per input variable
        plus one per output variable, which is exactly the layout of Tables 1
        and 2 of the paper.
        """
        rows: list[dict[str, str]] = []
        for rule in self._rule_base:
            row: dict[str, str] = {"Rule": rule.label}
            from .rules import _propositions  # local import to avoid cycle at module load

            for prop in _propositions(rule.antecedent):
                row[prop.variable] = prop.term
            for consequent in rule.consequents:
                row[consequent.variable] = consequent.term
            rows.append(row)
        return rows

    def membership_table(
        self, variable: str, points: int = 11
    ) -> dict[str, list[tuple[float, float]]]:
        """Sample each term of a variable at ``points`` evenly spaced values.

        Used by the experiments layer to render Figs. 5 and 6 (membership
        function plots) as ASCII tables.
        """
        all_vars = {
            **self._rule_base.input_variables,
            **self._rule_base.output_variables,
        }
        try:
            var = all_vars[variable]
        except KeyError:
            raise KeyError(
                f"controller {self._name!r} has no variable {variable!r}; "
                f"available: {sorted(all_vars)}"
            ) from None
        xs = np.linspace(*var.universe, points)
        table: dict[str, list[tuple[float, float]]] = {}
        for term in var:
            mu = term.membership.sample(xs)
            table[term.name] = [(float(x), float(m)) for x, m in zip(xs, mu)]
        return table
