"""Fuzzy rules, antecedent expressions and rule bases.

Rules have the paper's form ``IF "conditions" THEN "control action"``:

    IF S is Sl AND A is B1 AND D is N THEN Cv is Cv3

Antecedents are expression trees over atomic propositions
(``variable IS [hedge] term``) combined with AND / OR / NOT, so arbitrary
rule structures are supported even though FRB1/FRB2 only use conjunctions.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from .hedges import Hedge
from .operators import SNorm, TNorm, MINIMUM, MAXIMUM
from .variables import LinguisticVariable

__all__ = [
    "Antecedent",
    "Proposition",
    "And",
    "Or",
    "Not",
    "Consequent",
    "FuzzyRule",
    "RuleBase",
]


class Antecedent(ABC):
    """Node of a rule antecedent expression tree."""

    @abstractmethod
    def firing_strength(
        self,
        degrees: Mapping[str, Mapping[str, float]],
        tnorm: TNorm,
        snorm: SNorm,
    ) -> float:
        """Evaluate the antecedent given fuzzified input degrees.

        ``degrees`` maps variable name -> term name -> membership degree.
        """

    @abstractmethod
    def variables(self) -> set[str]:
        """Names of the linguistic variables referenced by this expression."""

    # Operator sugar so rules can be written programmatically:
    # (Proposition(...) & Proposition(...)) | ~Proposition(...)
    def __and__(self, other: "Antecedent") -> "And":
        return And((self, other))

    def __or__(self, other: "Antecedent") -> "Or":
        return Or((self, other))

    def __invert__(self) -> "Not":
        return Not(self)


@dataclass(frozen=True)
class Proposition(Antecedent):
    """Atomic antecedent ``variable IS [hedge] term``."""

    variable: str
    term: str
    hedge: Hedge | None = None

    def firing_strength(
        self,
        degrees: Mapping[str, Mapping[str, float]],
        tnorm: TNorm,
        snorm: SNorm,
    ) -> float:
        try:
            var_degrees = degrees[self.variable]
        except KeyError:
            raise KeyError(
                f"no fuzzified degrees supplied for variable {self.variable!r}"
            ) from None
        try:
            mu = float(var_degrees[self.term])
        except KeyError:
            raise KeyError(
                f"variable {self.variable!r} has no fuzzified term {self.term!r}"
            ) from None
        if self.hedge is not None:
            mu = float(self.hedge(mu))
        return mu

    def variables(self) -> set[str]:
        return {self.variable}

    def __str__(self) -> str:
        hedge = f"{self.hedge.name} " if self.hedge else ""
        return f"{self.variable} is {hedge}{self.term}"


@dataclass(frozen=True)
class And(Antecedent):
    """Conjunction of sub-antecedents, combined with the engine's t-norm."""

    operands: tuple[Antecedent, ...]

    def __post_init__(self) -> None:
        if len(self.operands) < 2:
            raise ValueError("And requires at least two operands")

    def firing_strength(
        self,
        degrees: Mapping[str, Mapping[str, float]],
        tnorm: TNorm,
        snorm: SNorm,
    ) -> float:
        return tnorm.reduce(op.firing_strength(degrees, tnorm, snorm) for op in self.operands)

    def variables(self) -> set[str]:
        names: set[str] = set()
        for op in self.operands:
            names |= op.variables()
        return names

    def __str__(self) -> str:
        return "(" + " AND ".join(str(op) for op in self.operands) + ")"


@dataclass(frozen=True)
class Or(Antecedent):
    """Disjunction of sub-antecedents, combined with the engine's s-norm."""

    operands: tuple[Antecedent, ...]

    def __post_init__(self) -> None:
        if len(self.operands) < 2:
            raise ValueError("Or requires at least two operands")

    def firing_strength(
        self,
        degrees: Mapping[str, Mapping[str, float]],
        tnorm: TNorm,
        snorm: SNorm,
    ) -> float:
        return snorm.reduce(op.firing_strength(degrees, tnorm, snorm) for op in self.operands)

    def variables(self) -> set[str]:
        names: set[str] = set()
        for op in self.operands:
            names |= op.variables()
        return names

    def __str__(self) -> str:
        return "(" + " OR ".join(str(op) for op in self.operands) + ")"


@dataclass(frozen=True)
class Not(Antecedent):
    """Standard-complement negation of a sub-antecedent."""

    operand: Antecedent

    def firing_strength(
        self,
        degrees: Mapping[str, Mapping[str, float]],
        tnorm: TNorm,
        snorm: SNorm,
    ) -> float:
        return 1.0 - self.operand.firing_strength(degrees, tnorm, snorm)

    def variables(self) -> set[str]:
        return self.operand.variables()

    def __str__(self) -> str:
        return f"(NOT {self.operand})"


@dataclass(frozen=True)
class Consequent:
    """Rule consequent ``variable IS term`` with an optional rule weight."""

    variable: str
    term: str

    def __str__(self) -> str:
        return f"{self.variable} is {self.term}"


@dataclass(frozen=True)
class FuzzyRule:
    """A single ``IF antecedent THEN consequent(s)`` rule.

    ``weight`` scales the firing strength (1.0 for all paper rules) and
    ``label`` carries the rule index so FRB1/FRB2 tables can be rendered and
    cross-checked against the paper.
    """

    antecedent: Antecedent
    consequents: tuple[Consequent, ...]
    weight: float = 1.0
    label: str = ""

    def __post_init__(self) -> None:
        if not self.consequents:
            raise ValueError("a rule requires at least one consequent")
        if not 0.0 <= self.weight <= 1.0:
            raise ValueError(f"rule weight must lie in [0, 1], got {self.weight}")

    def firing_strength(
        self,
        degrees: Mapping[str, Mapping[str, float]],
        tnorm: TNorm = MINIMUM,
        snorm: SNorm = MAXIMUM,
    ) -> float:
        """Weighted firing strength of the rule for fuzzified inputs."""
        return self.weight * self.antecedent.firing_strength(degrees, tnorm, snorm)

    def input_variables(self) -> set[str]:
        return self.antecedent.variables()

    def output_variables(self) -> set[str]:
        return {c.variable for c in self.consequents}

    def __str__(self) -> str:
        then = " AND ".join(str(c) for c in self.consequents)
        prefix = f"[{self.label}] " if self.label else ""
        return f"{prefix}IF {self.antecedent} THEN {then}"


class RuleBase:
    """An ordered collection of fuzzy rules validated against variables.

    The rule base checks, at construction time, that every rule references
    only known variables and terms — the paper's FRB1 (42 rules) and FRB2
    (27 rules) are instances of this class.
    """

    def __init__(
        self,
        rules: Iterable[FuzzyRule],
        inputs: Sequence[LinguisticVariable],
        outputs: Sequence[LinguisticVariable],
        name: str = "rule-base",
    ):
        self._name = name
        self._inputs = {var.name: var for var in inputs}
        self._outputs = {var.name: var for var in outputs}
        if not self._inputs:
            raise ValueError("rule base requires at least one input variable")
        if not self._outputs:
            raise ValueError("rule base requires at least one output variable")
        overlap = set(self._inputs) & set(self._outputs)
        if overlap:
            raise ValueError(f"variables cannot be both input and output: {sorted(overlap)}")
        self._rules = list(rules)
        if not self._rules:
            raise ValueError(f"rule base {name!r} requires at least one rule")
        for rule in self._rules:
            self._validate_rule(rule)

    def _validate_rule(self, rule: FuzzyRule) -> None:
        for prop in _propositions(rule.antecedent):
            var = self._inputs.get(prop.variable)
            if var is None:
                raise ValueError(
                    f"rule {rule.label or rule} references unknown input "
                    f"variable {prop.variable!r}"
                )
            if prop.term not in var:
                raise ValueError(
                    f"rule {rule.label or rule} references unknown term "
                    f"{prop.term!r} of variable {prop.variable!r}"
                )
        for consequent in rule.consequents:
            var = self._outputs.get(consequent.variable)
            if var is None:
                raise ValueError(
                    f"rule {rule.label or rule} references unknown output "
                    f"variable {consequent.variable!r}"
                )
            if consequent.term not in var:
                raise ValueError(
                    f"rule {rule.label or rule} references unknown term "
                    f"{consequent.term!r} of output variable {consequent.variable!r}"
                )

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._name

    @property
    def rules(self) -> list[FuzzyRule]:
        return list(self._rules)

    @property
    def input_variables(self) -> dict[str, LinguisticVariable]:
        return dict(self._inputs)

    @property
    def output_variables(self) -> dict[str, LinguisticVariable]:
        return dict(self._outputs)

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self) -> Iterator[FuzzyRule]:
        return iter(self._rules)

    def __getitem__(self, index: int) -> FuzzyRule:
        return self._rules[index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RuleBase({self._name!r}, rules={len(self._rules)})"

    # ------------------------------------------------------------------
    def completeness_gaps(self) -> list[dict[str, str]]:
        """Return input-term combinations not covered by any conjunctive rule.

        Only applicable to rule bases whose rules are pure conjunctions of one
        proposition per input variable (as FRB1 and FRB2 are); rules with OR /
        NOT / hedges are skipped.  A complete grid rule base returns ``[]``.
        """
        covered: set[tuple[tuple[str, str], ...]] = set()
        for rule in self._rules:
            props = _propositions(rule.antecedent)
            if any(p.hedge is not None for p in props):
                continue
            if not _is_pure_conjunction(rule.antecedent):
                continue
            key = tuple(sorted((p.variable, p.term) for p in props))
            if len({var for var, _ in key}) == len(self._inputs):
                covered.add(key)

        gaps: list[dict[str, str]] = []
        names = sorted(self._inputs)
        combos: list[dict[str, str]] = [{}]
        for name in names:
            combos = [
                {**combo, name: term}
                for combo in combos
                for term in self._inputs[name].term_names
            ]
        for combo in combos:
            key = tuple(sorted(combo.items()))
            if key not in covered:
                gaps.append(combo)
        return gaps

    def is_complete(self) -> bool:
        """True when every input-term combination is covered by a rule."""
        return not self.completeness_gaps()


def _propositions(node: Antecedent) -> list[Proposition]:
    """Flatten an antecedent tree into its atomic propositions."""
    if isinstance(node, Proposition):
        return [node]
    if isinstance(node, Not):
        return _propositions(node.operand)
    if isinstance(node, (And, Or)):
        props: list[Proposition] = []
        for op in node.operands:
            props.extend(_propositions(op))
        return props
    raise TypeError(f"unknown antecedent node type: {type(node)!r}")


def _is_pure_conjunction(node: Antecedent) -> bool:
    if isinstance(node, Proposition):
        return True
    if isinstance(node, And):
        return all(_is_pure_conjunction(op) for op in node.operands)
    return False
