"""Fuzzy set operators: t-norms, s-norms (t-conorms), complements, aggregation.

The Mamdani controllers in the paper use the classic ``min`` conjunction /
``max`` aggregation, but the toolkit exposes the usual families so rule
conjunction, disjunction and aggregation strategies are pluggable (these are
exercised by the ablation benches).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

import numpy as np

__all__ = [
    "TNorm",
    "SNorm",
    "Complement",
    "MINIMUM",
    "PRODUCT",
    "LUKASIEWICZ_AND",
    "DRASTIC_AND",
    "NILPOTENT_AND",
    "HAMACHER_AND",
    "MAXIMUM",
    "PROBABILISTIC_SUM",
    "BOUNDED_SUM",
    "DRASTIC_OR",
    "NILPOTENT_OR",
    "EINSTEIN_OR",
    "STANDARD_COMPLEMENT",
    "SUGENO_COMPLEMENT",
    "YAGER_COMPLEMENT",
    "tnorm_by_name",
    "snorm_by_name",
    "aggregate",
]

ArrayLike = float | np.ndarray


@dataclass(frozen=True)
class TNorm:
    """A fuzzy conjunction (t-norm) with a display name."""

    name: str
    fn: Callable[[ArrayLike, ArrayLike], ArrayLike]

    def __call__(self, a: ArrayLike, b: ArrayLike) -> ArrayLike:
        return self.fn(a, b)

    def reduce(self, values: Iterable[float]) -> float:
        """Fold the t-norm over an iterable of membership degrees."""
        result: float | None = None
        for value in values:
            result = float(value) if result is None else float(self.fn(result, value))
        if result is None:
            raise ValueError("cannot reduce an empty sequence of membership degrees")
        return result


@dataclass(frozen=True)
class SNorm:
    """A fuzzy disjunction (s-norm / t-conorm) with a display name."""

    name: str
    fn: Callable[[ArrayLike, ArrayLike], ArrayLike]

    def __call__(self, a: ArrayLike, b: ArrayLike) -> ArrayLike:
        return self.fn(a, b)

    def reduce(self, values: Iterable[float]) -> float:
        """Fold the s-norm over an iterable of membership degrees."""
        result: float | None = None
        for value in values:
            result = float(value) if result is None else float(self.fn(result, value))
        if result is None:
            raise ValueError("cannot reduce an empty sequence of membership degrees")
        return result


@dataclass(frozen=True)
class Complement:
    """A fuzzy negation with a display name."""

    name: str
    fn: Callable[[ArrayLike], ArrayLike]

    def __call__(self, a: ArrayLike) -> ArrayLike:
        return self.fn(a)


# ----------------------------------------------------------------------
# t-norms (conjunctions)
# ----------------------------------------------------------------------
def _drastic_and(a: ArrayLike, b: ArrayLike) -> ArrayLike:
    a_arr, b_arr = np.asarray(a, dtype=float), np.asarray(b, dtype=float)
    result = np.where(a_arr >= 1.0, b_arr, np.where(b_arr >= 1.0, a_arr, 0.0))
    return result if result.ndim else float(result)


def _nilpotent_and(a: ArrayLike, b: ArrayLike) -> ArrayLike:
    a_arr, b_arr = np.asarray(a, dtype=float), np.asarray(b, dtype=float)
    result = np.where(a_arr + b_arr > 1.0, np.minimum(a_arr, b_arr), 0.0)
    return result if result.ndim else float(result)


def _hamacher_and(a: ArrayLike, b: ArrayLike) -> ArrayLike:
    a_arr, b_arr = np.asarray(a, dtype=float), np.asarray(b, dtype=float)
    denom = a_arr + b_arr - a_arr * b_arr
    with np.errstate(divide="ignore", invalid="ignore"):
        result = np.where(denom > 0.0, (a_arr * b_arr) / np.where(denom > 0, denom, 1.0), 0.0)
    return result if result.ndim else float(result)


MINIMUM = TNorm("minimum", lambda a, b: np.minimum(a, b))
PRODUCT = TNorm("product", lambda a, b: np.multiply(a, b))
LUKASIEWICZ_AND = TNorm("lukasiewicz", lambda a, b: np.maximum(0.0, np.add(a, b) - 1.0))
DRASTIC_AND = TNorm("drastic", _drastic_and)
NILPOTENT_AND = TNorm("nilpotent", _nilpotent_and)
HAMACHER_AND = TNorm("hamacher", _hamacher_and)


# ----------------------------------------------------------------------
# s-norms (disjunctions)
# ----------------------------------------------------------------------
def _drastic_or(a: ArrayLike, b: ArrayLike) -> ArrayLike:
    a_arr, b_arr = np.asarray(a, dtype=float), np.asarray(b, dtype=float)
    result = np.where(a_arr <= 0.0, b_arr, np.where(b_arr <= 0.0, a_arr, 1.0))
    return result if result.ndim else float(result)


def _nilpotent_or(a: ArrayLike, b: ArrayLike) -> ArrayLike:
    a_arr, b_arr = np.asarray(a, dtype=float), np.asarray(b, dtype=float)
    result = np.where(a_arr + b_arr < 1.0, np.maximum(a_arr, b_arr), 1.0)
    return result if result.ndim else float(result)


def _einstein_or(a: ArrayLike, b: ArrayLike) -> ArrayLike:
    a_arr, b_arr = np.asarray(a, dtype=float), np.asarray(b, dtype=float)
    result = (a_arr + b_arr) / (1.0 + a_arr * b_arr)
    return result if result.ndim else float(result)


MAXIMUM = SNorm("maximum", lambda a, b: np.maximum(a, b))
PROBABILISTIC_SUM = SNorm(
    "probabilistic_sum", lambda a, b: np.add(a, b) - np.multiply(a, b)
)
BOUNDED_SUM = SNorm("bounded_sum", lambda a, b: np.minimum(1.0, np.add(a, b)))
DRASTIC_OR = SNorm("drastic", _drastic_or)
NILPOTENT_OR = SNorm("nilpotent", _nilpotent_or)
EINSTEIN_OR = SNorm("einstein", _einstein_or)


# ----------------------------------------------------------------------
# complements
# ----------------------------------------------------------------------
STANDARD_COMPLEMENT = Complement("standard", lambda a: 1.0 - np.asarray(a, dtype=float))


def SUGENO_COMPLEMENT(lam: float) -> Complement:
    """Sugeno-class complement ``(1 - a) / (1 + lam a)`` for ``lam > -1``."""
    if lam <= -1.0:
        raise ValueError(f"Sugeno complement requires lambda > -1, got {lam}")
    return Complement(
        f"sugeno({lam})",
        lambda a: (1.0 - np.asarray(a, dtype=float)) / (1.0 + lam * np.asarray(a, dtype=float)),
    )


def YAGER_COMPLEMENT(w: float) -> Complement:
    """Yager-class complement ``(1 - a^w)^(1/w)`` for ``w > 0``."""
    if w <= 0.0:
        raise ValueError(f"Yager complement requires w > 0, got {w}")
    return Complement(
        f"yager({w})",
        lambda a: (1.0 - np.asarray(a, dtype=float) ** w) ** (1.0 / w),
    )


_TNORMS: dict[str, TNorm] = {
    norm.name: norm
    for norm in (MINIMUM, PRODUCT, LUKASIEWICZ_AND, DRASTIC_AND, NILPOTENT_AND, HAMACHER_AND)
}
_SNORMS: dict[str, SNorm] = {
    norm.name: norm
    for norm in (MAXIMUM, PROBABILISTIC_SUM, BOUNDED_SUM, DRASTIC_OR, NILPOTENT_OR, EINSTEIN_OR)
}


def tnorm_by_name(name: str) -> TNorm:
    """Look up a t-norm by its registered name (e.g. ``"minimum"``)."""
    try:
        return _TNORMS[name]
    except KeyError:
        raise KeyError(
            f"unknown t-norm {name!r}; available: {sorted(_TNORMS)}"
        ) from None


def snorm_by_name(name: str) -> SNorm:
    """Look up an s-norm by its registered name (e.g. ``"maximum"``)."""
    try:
        return _SNORMS[name]
    except KeyError:
        raise KeyError(
            f"unknown s-norm {name!r}; available: {sorted(_SNORMS)}"
        ) from None


def aggregate(snorm: SNorm, surfaces: Iterable[np.ndarray]) -> np.ndarray:
    """Aggregate clipped rule-output surfaces sampled on a common universe.

    Returns the element-wise s-norm fold of the surfaces; an empty iterable
    raises ``ValueError`` because aggregation of nothing is undefined.
    """
    result: np.ndarray | None = None
    for surface in surfaces:
        arr = np.asarray(surface, dtype=float)
        result = arr.copy() if result is None else np.asarray(snorm(result, arr))
    if result is None:
        raise ValueError("cannot aggregate an empty collection of surfaces")
    return result
