"""Membership functions for fuzzy sets.

The paper uses triangular and trapezoidal membership functions exclusively
("because they are suitable for real-time operation", Section 3), defined as

``f(x; x0, a0, a1)``
    triangular function with centre ``x0``, left width ``a0`` and right width
    ``a1`` (paper notation), and

``g(x; x0, x1, a0, a1)``
    trapezoidal function with left edge ``x0``, right edge ``x1``, left width
    ``a0`` and right width ``a1``.

This module provides those two shapes under both the conventional break-point
parameterisation (:class:`Triangular`, :class:`Trapezoidal`) and the paper's
width parameterisation (:func:`paper_triangular`, :func:`paper_trapezoidal`),
plus a collection of additional shapes (Gaussian, bell, sigmoid, Z/S/Pi,
singleton, piecewise-linear) so the toolkit is usable beyond the paper's two
controllers.

All membership functions are immutable callables mapping a crisp value (or a
NumPy array of values) to a membership degree in ``[0, 1]``.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "MembershipFunction",
    "Triangular",
    "Trapezoidal",
    "Gaussian",
    "GeneralizedBell",
    "Sigmoid",
    "ZShape",
    "SShape",
    "PiShape",
    "Singleton",
    "PiecewiseLinear",
    "ConstantMF",
    "paper_triangular",
    "paper_trapezoidal",
]

_EPS = 1e-12
# np.isclose defaults, inlined: for finite values np.isclose(x, b) is exactly
# |x - b| <= atol + rtol * |b|, and the direct expression skips np.isclose's
# errstate/broadcast machinery — a fixed cost that dominates small batches.
_ISCLOSE_RTOL = 1e-5
_ISCLOSE_ATOL = 1e-8


def _as_array(x: float | np.ndarray) -> np.ndarray:
    return np.asarray(x, dtype=float)


def _near_peak(x: np.ndarray, b: float) -> np.ndarray:
    """Bit-identical replacement for ``np.isclose(x, b)`` on finite inputs."""
    return np.abs(x - b) <= (_ISCLOSE_ATOL + _ISCLOSE_RTOL * abs(b))


class MembershipFunction(ABC):
    """A fuzzy membership function ``mu: R -> [0, 1]``.

    Subclasses implement :meth:`evaluate` for NumPy arrays; scalar calls go
    through the same path and return a Python ``float``.
    """

    @abstractmethod
    def evaluate(self, x: np.ndarray) -> np.ndarray:
        """Return membership degrees for an array of crisp values."""

    @property
    @abstractmethod
    def support(self) -> tuple[float, float]:
        """Return the closed interval outside which membership is zero.

        Unbounded shapes (e.g. :class:`Gaussian`) return the interval where
        the membership exceeds a negligible tolerance.
        """

    def __call__(self, x: float | np.ndarray) -> float | np.ndarray:
        arr = _as_array(x)
        result = np.clip(self.evaluate(arr), 0.0, 1.0)
        if np.isscalar(x) or (isinstance(x, np.ndarray) and x.ndim == 0):
            return float(result)
        return result

    # ------------------------------------------------------------------
    # Generic helpers shared by the inference/defuzzification machinery.
    # ------------------------------------------------------------------
    def sample(self, universe: Sequence[float] | np.ndarray) -> np.ndarray:
        """Evaluate the membership function over a discretised universe."""
        return np.clip(self.evaluate(_as_array(universe)), 0.0, 1.0)

    def centroid(self, resolution: int = 501) -> float:
        """Return the centroid of the membership function over its support."""
        lo, hi = self.support
        if hi <= lo:
            return lo
        xs = np.linspace(lo, hi, resolution)
        mu = self.sample(xs)
        total = float(np.trapezoid(mu, xs))
        if total < _EPS:
            return 0.5 * (lo + hi)
        return float(np.trapezoid(mu * xs, xs) / total)

    def height(self, resolution: int = 501) -> float:
        """Return the maximum membership degree over the support."""
        lo, hi = self.support
        if hi <= lo:
            return float(self(lo))
        xs = np.linspace(lo, hi, resolution)
        return float(np.max(self.sample(xs)))

    def is_normal(self, tolerance: float = 1e-9) -> bool:
        """Return ``True`` when the membership function reaches 1."""
        return self.height() >= 1.0 - tolerance


@dataclass(frozen=True)
class Triangular(MembershipFunction):
    """Triangular membership function with break points ``a <= b <= c``.

    ``a`` and ``c`` are the feet (membership 0) and ``b`` the peak
    (membership 1).  Degenerate shoulders (``a == b`` or ``b == c``) are
    allowed and produce half-open ramps, which is how the paper's edge terms
    (e.g. Near/Far distance in Fig. 5c) behave.
    """

    a: float
    b: float
    c: float

    def __post_init__(self) -> None:
        if not (self.a <= self.b <= self.c):
            raise ValueError(
                f"Triangular break points must satisfy a <= b <= c, "
                f"got a={self.a}, b={self.b}, c={self.c}"
            )

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        x = _as_array(x)
        mu = np.zeros_like(x)
        left_width = self.b - self.a
        right_width = self.c - self.b
        if left_width > _EPS:
            rising = (x > self.a) & (x < self.b)
            mu[rising] = (x[rising] - self.a) / left_width
        else:
            mu[_near_peak(x, self.b)] = 1.0
        if right_width > _EPS:
            falling = (x >= self.b) & (x < self.c)
            mu[falling] = (self.c - x[falling]) / right_width
        mu[_near_peak(x, self.b)] = 1.0
        if left_width <= _EPS:
            # Left shoulder: everything at/below the peak is fully included
            # only at the peak itself unless it is also the universe edge.
            mu[x == self.b] = 1.0
        return mu

    @property
    def support(self) -> tuple[float, float]:
        return (self.a, self.c)

    @property
    def peak(self) -> float:
        """Crisp value with full membership."""
        return self.b

    def height(self, resolution: int = 501) -> float:
        # The analytic peak is exact; grid sampling can miss it slightly.
        return float(self(self.b))


@dataclass(frozen=True)
class Trapezoidal(MembershipFunction):
    """Trapezoidal membership function with break points ``a <= b <= c <= d``.

    Membership rises from 0 at ``a`` to 1 at ``b``, stays 1 on ``[b, c]`` and
    falls back to 0 at ``d``.
    """

    a: float
    b: float
    c: float
    d: float

    def __post_init__(self) -> None:
        if not (self.a <= self.b <= self.c <= self.d):
            raise ValueError(
                f"Trapezoidal break points must satisfy a <= b <= c <= d, "
                f"got a={self.a}, b={self.b}, c={self.c}, d={self.d}"
            )

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        x = _as_array(x)
        mu = np.zeros_like(x)
        left_width = self.b - self.a
        right_width = self.d - self.c
        if left_width > _EPS:
            rising = (x > self.a) & (x < self.b)
            mu[rising] = (x[rising] - self.a) / left_width
        if right_width > _EPS:
            falling = (x > self.c) & (x < self.d)
            mu[falling] = (self.d - x[falling]) / right_width
        plateau = (x >= self.b) & (x <= self.c)
        mu[plateau] = 1.0
        return mu

    @property
    def support(self) -> tuple[float, float]:
        return (self.a, self.d)

    @property
    def core(self) -> tuple[float, float]:
        """Interval of full membership."""
        return (self.b, self.c)

    def height(self, resolution: int = 501) -> float:
        # The plateau value is exact; grid sampling can miss it slightly.
        return float(self(0.5 * (self.b + self.c)))


@dataclass(frozen=True)
class Gaussian(MembershipFunction):
    """Gaussian membership function ``exp(-(x - mean)^2 / (2 sigma^2))``."""

    mean: float
    sigma: float

    def __post_init__(self) -> None:
        if self.sigma <= 0:
            raise ValueError(f"Gaussian sigma must be positive, got {self.sigma}")

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        x = _as_array(x)
        return np.exp(-((x - self.mean) ** 2) / (2.0 * self.sigma**2))

    @property
    def support(self) -> tuple[float, float]:
        # 6 sigma captures > 1 - 1e-8 of the mass.
        return (self.mean - 6.0 * self.sigma, self.mean + 6.0 * self.sigma)


@dataclass(frozen=True)
class GeneralizedBell(MembershipFunction):
    """Generalised bell membership function ``1 / (1 + |(x-c)/a|^(2b))``."""

    a: float
    b: float
    c: float

    def __post_init__(self) -> None:
        if self.a <= 0:
            raise ValueError(f"Bell width 'a' must be positive, got {self.a}")
        if self.b <= 0:
            raise ValueError(f"Bell slope 'b' must be positive, got {self.b}")

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        x = _as_array(x)
        return 1.0 / (1.0 + np.abs((x - self.c) / self.a) ** (2.0 * self.b))

    @property
    def support(self) -> tuple[float, float]:
        # Membership drops below ~1e-6 at roughly a * 10^(3/b) from the centre.
        reach = self.a * 10.0 ** (3.0 / self.b)
        return (self.c - reach, self.c + reach)


@dataclass(frozen=True)
class Sigmoid(MembershipFunction):
    """Sigmoidal membership function ``1 / (1 + exp(-slope (x - inflection)))``."""

    inflection: float
    slope: float

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        x = _as_array(x)
        return 1.0 / (1.0 + np.exp(-self.slope * (x - self.inflection)))

    @property
    def support(self) -> tuple[float, float]:
        if abs(self.slope) < _EPS:
            return (-math.inf, math.inf)
        reach = 20.0 / abs(self.slope)
        return (self.inflection - reach, self.inflection + reach)


@dataclass(frozen=True)
class ZShape(MembershipFunction):
    """Z-shaped (smooth falling) membership function between ``a`` and ``b``."""

    a: float
    b: float

    def __post_init__(self) -> None:
        if self.a >= self.b:
            raise ValueError(f"ZShape requires a < b, got a={self.a}, b={self.b}")

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        x = _as_array(x)
        mu = np.ones_like(x)
        mid = 0.5 * (self.a + self.b)
        width = self.b - self.a
        first = (x >= self.a) & (x <= mid)
        second = (x > mid) & (x <= self.b)
        mu[first] = 1.0 - 2.0 * ((x[first] - self.a) / width) ** 2
        mu[second] = 2.0 * ((x[second] - self.b) / width) ** 2
        mu[x > self.b] = 0.0
        return mu

    @property
    def support(self) -> tuple[float, float]:
        return (-math.inf, self.b)


@dataclass(frozen=True)
class SShape(MembershipFunction):
    """S-shaped (smooth rising) membership function between ``a`` and ``b``."""

    a: float
    b: float

    def __post_init__(self) -> None:
        if self.a >= self.b:
            raise ValueError(f"SShape requires a < b, got a={self.a}, b={self.b}")

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        x = _as_array(x)
        mu = np.zeros_like(x)
        mid = 0.5 * (self.a + self.b)
        width = self.b - self.a
        first = (x >= self.a) & (x <= mid)
        second = (x > mid) & (x <= self.b)
        mu[first] = 2.0 * ((x[first] - self.a) / width) ** 2
        mu[second] = 1.0 - 2.0 * ((x[second] - self.b) / width) ** 2
        mu[x > self.b] = 1.0
        return mu

    @property
    def support(self) -> tuple[float, float]:
        return (self.a, math.inf)


@dataclass(frozen=True)
class PiShape(MembershipFunction):
    """Pi-shaped membership: S-shape rise on ``[a, b]``, Z-shape fall on ``[c, d]``."""

    a: float
    b: float
    c: float
    d: float

    def __post_init__(self) -> None:
        if not (self.a < self.b <= self.c < self.d):
            raise ValueError(
                f"PiShape requires a < b <= c < d, got "
                f"a={self.a}, b={self.b}, c={self.c}, d={self.d}"
            )

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        rise = SShape(self.a, self.b).evaluate(x)
        fall = ZShape(self.c, self.d).evaluate(x)
        return np.minimum(rise, fall)

    @property
    def support(self) -> tuple[float, float]:
        return (self.a, self.d)


@dataclass(frozen=True)
class Singleton(MembershipFunction):
    """Singleton membership: 1 at ``value`` and 0 elsewhere."""

    value: float
    tolerance: float = 1e-9

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        x = _as_array(x)
        return np.where(np.abs(x - self.value) <= self.tolerance, 1.0, 0.0)

    @property
    def support(self) -> tuple[float, float]:
        return (self.value, self.value)


class PiecewiseLinear(MembershipFunction):
    """Membership function interpolated linearly through ``(x, mu)`` points."""

    def __init__(self, points: Iterable[tuple[float, float]]):
        pts = sorted((float(x), float(mu)) for x, mu in points)
        if len(pts) < 2:
            raise ValueError("PiecewiseLinear requires at least two points")
        xs = [p[0] for p in pts]
        if len(set(xs)) != len(xs):
            raise ValueError("PiecewiseLinear x coordinates must be distinct")
        for _, mu in pts:
            if not 0.0 <= mu <= 1.0:
                raise ValueError(f"membership degrees must lie in [0, 1], got {mu}")
        self._xs = np.array(xs)
        self._mus = np.array([p[1] for p in pts])

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        x = _as_array(x)
        return np.interp(x, self._xs, self._mus, left=0.0, right=0.0)

    @property
    def support(self) -> tuple[float, float]:
        return (float(self._xs[0]), float(self._xs[-1]))

    @property
    def points(self) -> list[tuple[float, float]]:
        return [(float(x), float(mu)) for x, mu in zip(self._xs, self._mus)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PiecewiseLinear({self.points!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PiecewiseLinear):
            return NotImplemented
        return np.array_equal(self._xs, other._xs) and np.array_equal(self._mus, other._mus)

    def __hash__(self) -> int:
        return hash((tuple(self._xs), tuple(self._mus)))


@dataclass(frozen=True)
class ConstantMF(MembershipFunction):
    """Constant membership degree over a given interval.

    Used internally to represent clipped rule consequents and as a neutral
    element in aggregation tests.
    """

    level: float
    lo: float
    hi: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.level <= 1.0:
            raise ValueError(f"level must lie in [0, 1], got {self.level}")
        if self.lo > self.hi:
            raise ValueError(f"interval must satisfy lo <= hi, got [{self.lo}, {self.hi}]")

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        x = _as_array(x)
        inside = (x >= self.lo) & (x <= self.hi)
        return np.where(inside, self.level, 0.0)

    @property
    def support(self) -> tuple[float, float]:
        return (self.lo, self.hi)


# ----------------------------------------------------------------------
# Paper-notation constructors.
# ----------------------------------------------------------------------
def paper_triangular(x0: float, a0: float, a1: float) -> Triangular:
    """Build the paper's ``f(x; x0, a0, a1)`` triangular function.

    ``x0`` is the centre, ``a0`` the left width and ``a1`` the right width, so
    the support is ``[x0 - a0, x0 + a1]``.
    """
    if a0 < 0 or a1 < 0:
        raise ValueError(f"widths must be non-negative, got a0={a0}, a1={a1}")
    return Triangular(x0 - a0, x0, x0 + a1)


def paper_trapezoidal(x0: float, x1: float, a0: float, a1: float) -> Trapezoidal:
    """Build the paper's ``g(x; x0, x1, a0, a1)`` trapezoidal function.

    ``x0``/``x1`` are the left/right edges of the plateau and ``a0``/``a1``
    the left/right widths, so the support is ``[x0 - a0, x1 + a1]``.
    """
    if a0 < 0 or a1 < 0:
        raise ValueError(f"widths must be non-negative, got a0={a0}, a1={a1}")
    if x0 > x1:
        raise ValueError(f"plateau edges must satisfy x0 <= x1, got x0={x0}, x1={x1}")
    return Trapezoidal(x0 - a0, x0, x1, x1 + a1)
