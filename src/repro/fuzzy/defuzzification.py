"""Defuzzification strategies.

Mamdani inference produces an aggregated output fuzzy set sampled on the
output variable's grid; a defuzzifier reduces it to a single crisp value.
The paper's FLC uses the standard centre-of-gravity (centroid) defuzzifier;
the alternatives here are used by the defuzzification ablation bench.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

__all__ = [
    "Defuzzifier",
    "Centroid",
    "Bisector",
    "MeanOfMaximum",
    "SmallestOfMaximum",
    "LargestOfMaximum",
    "WeightedAverage",
    "defuzzifier_by_name",
    "DEFAULT_DEFUZZIFIER",
]

_EPS = 1e-12


class DefuzzificationError(ValueError):
    """Raised when an aggregated surface cannot be defuzzified (e.g. all zero)."""


class Defuzzifier(ABC):
    """Strategy object converting an aggregated membership surface to a crisp value."""

    name: str = "defuzzifier"

    @abstractmethod
    def defuzzify(self, grid: np.ndarray, surface: np.ndarray) -> float:
        """Return the crisp value for membership ``surface`` sampled on ``grid``."""

    def __call__(self, grid: np.ndarray, surface: np.ndarray) -> float:
        grid = np.asarray(grid, dtype=float)
        surface = np.asarray(surface, dtype=float)
        if grid.shape != surface.shape:
            raise ValueError(
                f"grid and surface shapes differ: {grid.shape} vs {surface.shape}"
            )
        if grid.size < 2:
            raise ValueError("defuzzification requires at least two grid points")
        if np.any(surface < -_EPS) or np.any(surface > 1.0 + 1e-9):
            raise ValueError("membership surface values must lie in [0, 1]")
        if float(np.max(surface)) <= _EPS:
            raise DefuzzificationError(
                "aggregated membership surface is identically zero; "
                "no rule fired for the given inputs"
            )
        return float(self.defuzzify(grid, surface))


@dataclass(frozen=True)
class Centroid(Defuzzifier):
    """Centre-of-gravity defuzzifier (the paper's choice)."""

    name: str = "centroid"

    def defuzzify(self, grid: np.ndarray, surface: np.ndarray) -> float:
        area = float(np.trapezoid(surface, grid))
        if area <= _EPS:
            raise DefuzzificationError("zero area under membership surface")
        return float(np.trapezoid(surface * grid, grid) / area)


@dataclass(frozen=True)
class Bisector(Defuzzifier):
    """Value that splits the area under the surface into two equal halves."""

    name: str = "bisector"

    def defuzzify(self, grid: np.ndarray, surface: np.ndarray) -> float:
        # Cumulative trapezoidal areas between consecutive grid points.
        segment_areas = 0.5 * (surface[1:] + surface[:-1]) * np.diff(grid)
        cumulative = np.concatenate(([0.0], np.cumsum(segment_areas)))
        total = cumulative[-1]
        if total <= _EPS:
            raise DefuzzificationError("zero area under membership surface")
        half = 0.5 * total
        idx = int(np.searchsorted(cumulative, half))
        idx = min(max(idx, 1), len(grid) - 1)
        # Linear interpolation inside the segment containing the half-area point.
        area_before = cumulative[idx - 1]
        segment = segment_areas[idx - 1]
        if segment <= _EPS:
            return float(grid[idx - 1])
        fraction = (half - area_before) / segment
        return float(grid[idx - 1] + fraction * (grid[idx] - grid[idx - 1]))


@dataclass(frozen=True)
class MeanOfMaximum(Defuzzifier):
    """Mean of the grid points attaining the maximum membership."""

    name: str = "mom"
    tolerance: float = 1e-9

    def defuzzify(self, grid: np.ndarray, surface: np.ndarray) -> float:
        peak = float(np.max(surface))
        at_peak = grid[surface >= peak - self.tolerance]
        return float(np.mean(at_peak))


@dataclass(frozen=True)
class SmallestOfMaximum(Defuzzifier):
    """Smallest grid point attaining the maximum membership."""

    name: str = "som"
    tolerance: float = 1e-9

    def defuzzify(self, grid: np.ndarray, surface: np.ndarray) -> float:
        peak = float(np.max(surface))
        at_peak = grid[surface >= peak - self.tolerance]
        return float(np.min(at_peak))


@dataclass(frozen=True)
class LargestOfMaximum(Defuzzifier):
    """Largest grid point attaining the maximum membership."""

    name: str = "lom"
    tolerance: float = 1e-9

    def defuzzify(self, grid: np.ndarray, surface: np.ndarray) -> float:
        peak = float(np.max(surface))
        at_peak = grid[surface >= peak - self.tolerance]
        return float(np.max(at_peak))


@dataclass(frozen=True)
class WeightedAverage(Defuzzifier):
    """Height-weighted average — a fast approximation of the centroid.

    Equivalent to the centroid for symmetric, non-overlapping consequent
    sets; useful for latency-sensitive deployments of the controller.
    """

    name: str = "weighted_average"

    def defuzzify(self, grid: np.ndarray, surface: np.ndarray) -> float:
        total = float(np.sum(surface))
        if total <= _EPS:
            raise DefuzzificationError("zero total membership")
        return float(np.sum(surface * grid) / total)


DEFAULT_DEFUZZIFIER = Centroid()

_REGISTRY: dict[str, Defuzzifier] = {
    d.name: d
    for d in (
        Centroid(),
        Bisector(),
        MeanOfMaximum(),
        SmallestOfMaximum(),
        LargestOfMaximum(),
        WeightedAverage(),
    )
}


def defuzzifier_by_name(name: str) -> Defuzzifier:
    """Look up a defuzzifier by its registered name (``"centroid"``, ``"mom"``, ...)."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown defuzzifier {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
