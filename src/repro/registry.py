"""String-keyed plugin registries shared by the whole package.

The unified scenario API (:mod:`repro.api`) replaces the string literals
that used to be duplicated across the CLI, the experiment layer and the
controller configs with *registries*: small ordered name → object tables
with decorator-based registration, explicit collision errors and
"unknown key" messages that list what *is* available.

The class is deliberately dependency-free so low-level modules
(:mod:`repro.fuzzy.controller`, :mod:`repro.simulation.executor`) can host
their own registries without importing the high-level API package.
"""

from __future__ import annotations

from typing import Callable, Generic, Iterator, TypeVar

__all__ = ["Registry", "RegistryError"]

T = TypeVar("T")


class RegistryError(LookupError):
    """Raised on unknown keys and on conflicting registrations."""


class Registry(Generic[T]):
    """An ordered, string-keyed table of named plugins.

    Parameters
    ----------
    kind:
        Human-readable description of what the registry holds
        (``"controller"``, ``"engine"``, ...); used in error messages.

    Registration preserves insertion order — ``names()`` is the canonical
    ordering for CLI ``choices`` lists and default selections.  Aliases
    resolve through :meth:`get` but never appear in ``names()``.
    """

    def __init__(self, kind: str):
        self._kind = kind
        self._entries: dict[str, T] = {}
        self._aliases: dict[str, str] = {}

    # ------------------------------------------------------------------
    @property
    def kind(self) -> str:
        return self._kind

    def register(
        self,
        name: str,
        obj: T | None = None,
        *,
        aliases: tuple[str, ...] = (),
        replace: bool = False,
    ) -> Callable[[T], T] | T:
        """Register ``obj`` under ``name`` (direct call or decorator).

        ``register("x", obj)`` registers immediately; ``@register("x")``
        registers the decorated object and returns it unchanged.  Duplicate
        names (or aliases colliding with names) raise
        :class:`RegistryError` unless ``replace=True``.
        """
        if obj is None:

            def decorator(decorated: T) -> T:
                self.register(name, decorated, aliases=aliases, replace=replace)
                return decorated

            return decorator
        if not replace:
            for key in (name, *aliases):
                if key in self._entries or key in self._aliases:
                    raise RegistryError(
                        f"{self._kind} {key!r} is already registered; "
                        f"pass replace=True to override"
                    )
        # replace=True replaces *this* name only; an alias shadowing a
        # different primary entry is always a conflict.
        for alias in aliases:
            if alias in self._entries and alias != name:
                raise RegistryError(
                    f"alias {alias!r} collides with the registered "
                    f"{self._kind} {alias!r}"
                )
        self._aliases.pop(name, None)
        self._entries[name] = obj
        for alias in aliases:
            self._aliases[alias] = name
        return obj

    def get(self, name: str) -> T:
        """Look up a registered object, resolving aliases."""
        key = self._aliases.get(name, name)
        try:
            return self._entries[key]
        except KeyError:
            raise RegistryError(
                f"unknown {self._kind} {name!r}; available: {list(self._entries)}"
            ) from None

    def names(self) -> tuple[str, ...]:
        """Primary registered names, in registration order (no aliases)."""
        return tuple(self._entries)

    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._entries or name in self._aliases

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry({self._kind!r}, names={list(self._entries)})"
